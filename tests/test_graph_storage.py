"""Tests for the packed-CSR storage layer (:mod:`repro.graph.storage`).

Covers the packed-buffer format (layout, header versioning, zero-copy
views), the shared-memory materialisation, the on-disk frozen-graph file
with memory-mapped loading, and the adopting :class:`CSRDiGraph`
constructors the streamed builders rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.models import WeightedCascadeModel
from repro.exceptions import GraphError
from repro.graph import storage
from repro.graph.builders import from_edge_array
from repro.graph.digraph import CSRDiGraph
from repro.graph.generators import (
    power_law_configuration_digraph,
    preferential_attachment_digraph,
    snap_scale_digraph,
)
from repro.rrsets.generator import SubsimRRGenerator


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_digraph(80, out_degree=4, seed=3)


@pytest.fixture(scope="module")
def probabilities(graph):
    return np.asarray(
        WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
    )


def _assert_graph_equal(left: CSRDiGraph, right: CSRDiGraph) -> None:
    assert left.num_nodes == right.num_nodes
    assert left.num_edges == right.num_edges
    for name in storage.GRAPH_ARRAY_NAMES:
        a = storage.graph_arrays(left)[name]
        b = storage.graph_arrays(right)[name]
        assert np.array_equal(a, b), name


# --------------------------------------------------------------------------- #
# packed buffer + header
# --------------------------------------------------------------------------- #
class TestPackedBuffer:
    def test_roundtrip_views_are_zero_copy_and_read_only(self):
        arrays = {
            "ints": np.arange(17, dtype=np.int64),
            "floats": np.linspace(0, 1, 9, dtype=np.float64),
            "matrix": np.arange(12, dtype=np.float32).reshape(3, 4),
            "empty": np.empty(0, dtype=np.int32),
        }
        header, total_bytes = storage.pack_layout(arrays)
        buffer = bytearray(total_bytes)
        storage.pack_arrays(buffer, header, arrays)
        views = storage.unpack_arrays(buffer, header)
        assert set(views) == set(arrays)
        for name, original in arrays.items():
            view = views[name]
            assert np.array_equal(view, original)
            assert view.dtype == original.dtype
            assert view.shape == original.shape
            assert not view.flags.writeable
        # zero-copy: the views alias the packed buffer, so mutating the
        # buffer through the bytearray shows up in the view
        offset = next(e for e in header["arrays"] if e["name"] == "ints")["offset"]
        buffer[offset] = 0xFF
        assert views["ints"][0] != 0

    def test_alignment(self):
        arrays = {"a": np.ones(3, dtype=np.int8), "b": np.ones(5, dtype=np.float64)}
        header, _ = storage.pack_layout(arrays)
        for entry in header["arrays"]:
            assert entry["offset"] % storage.ALIGNMENT == 0

    def test_object_dtype_rejected(self):
        with pytest.raises(GraphError, match="object dtype"):
            storage.pack_layout({"bad": np.array([object()])})

    def test_header_bytes_roundtrip(self):
        arrays = {"x": np.arange(4, dtype=np.int64)}
        header, _ = storage.pack_layout(arrays)
        data = storage.header_to_bytes(header)
        assert storage.header_from_bytes(data) == header

    def test_header_validation(self):
        arrays = {"x": np.arange(4, dtype=np.int64)}
        header, _ = storage.pack_layout(arrays)
        bad_magic = dict(header, magic="not-repro")
        with pytest.raises(GraphError, match="magic"):
            storage.unpack_arrays(bytearray(64), bad_magic)
        bad_version = dict(header, version=999)
        with pytest.raises(GraphError, match="version"):
            storage.unpack_arrays(bytearray(64), bad_version)
        with pytest.raises(GraphError, match="malformed"):
            storage.header_from_bytes(b"\xff\xfe not json")


# --------------------------------------------------------------------------- #
# freeze/thaw of (graph, probabilities) payloads
# --------------------------------------------------------------------------- #
class TestFreezeThaw:
    def test_payload_roundtrip(self, graph, probabilities):
        header, arrays = storage.freeze_payload(
            graph, [probabilities, probabilities * 0.5]
        )
        buffer = bytearray(header["total_bytes"])
        storage.pack_arrays(buffer, header, arrays)
        thawed_graph, thawed_probs = storage.thaw_payload(buffer, header)
        _assert_graph_equal(graph, thawed_graph)
        assert len(thawed_probs) == 2
        assert np.array_equal(thawed_probs[0], probabilities)
        assert np.array_equal(thawed_probs[1], probabilities * 0.5)

    def test_graph_from_arrays_ignores_extra_keys(self, graph):
        arrays = storage.graph_arrays(graph)
        arrays["probs.0"] = np.zeros(3)
        rebuilt = storage.graph_from_arrays(graph.num_nodes, arrays)
        _assert_graph_equal(graph, rebuilt)


# --------------------------------------------------------------------------- #
# shared-memory segments
# --------------------------------------------------------------------------- #
class TestSharedMemory:
    def test_freeze_attach_close_unlink(self, graph, probabilities):
        segment = storage.freeze_to_shm(graph, [probabilities])
        try:
            assert segment.name.startswith(storage.SHM_NAME_PREFIX)
            assert storage.segment_exists(segment.name)
            assert segment.name in storage.active_segments()
            attached, views = storage.attach_views(segment.name, segment.header_bytes)
            rebuilt = storage.graph_from_arrays(
                graph.num_nodes,
                {name: views[name] for name in storage.GRAPH_ARRAY_NAMES},
            )
            _assert_graph_equal(graph, rebuilt)
            assert np.array_equal(views["probs.0"], probabilities)
            assert not views["probs.0"].flags.writeable
            del views, rebuilt
            attached.close()
        finally:
            segment.close()
            segment.unlink()
        assert not storage.segment_exists(segment.name)
        assert segment.name not in storage.active_segments()
        # unlink is safe to repeat
        segment.unlink()

    def test_attach_unknown_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            storage.attach_segment(storage.new_segment_name())

    def test_segment_names_are_unique(self):
        names = {storage.new_segment_name() for _ in range(32)}
        assert len(names) == 32


# --------------------------------------------------------------------------- #
# on-disk frozen graphs (np.memmap)
# --------------------------------------------------------------------------- #
class TestFrozenFile:
    def test_save_load_roundtrip_mmap_and_copy(self, tmp_path, graph, probabilities):
        path = tmp_path / "graph.rprocsr"
        storage.save_frozen(path, graph, [probabilities])
        for mmap in (True, False):
            loaded_graph, loaded_probs = storage.load_frozen(path, mmap=mmap)
            _assert_graph_equal(graph, loaded_graph)
            assert np.array_equal(loaded_probs[0], probabilities)
            assert not loaded_graph.targets.flags.writeable

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.rprocsr"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(GraphError, match="bad magic"):
            storage.load_frozen(path)

    def test_empty_graph_roundtrip(self, tmp_path):
        empty = CSRDiGraph(
            5, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        path = tmp_path / "empty.rprocsr"
        storage.save_frozen(path, empty, [])
        loaded, probs = storage.load_frozen(path)
        _assert_graph_equal(empty, loaded)
        assert probs == []

    def test_rr_generation_bit_identical_on_memmapped_graph(
        self, tmp_path, graph, probabilities
    ):
        path = tmp_path / "graph.rprocsr"
        storage.save_frozen(path, graph, [probabilities])
        loaded_graph, (loaded_probs,) = storage.load_frozen(path, mmap=True)
        expected = SubsimRRGenerator(graph, probabilities).generate_batch(64, rng=9)
        actual = SubsimRRGenerator(loaded_graph, loaded_probs).generate_batch(64, rng=9)
        assert len(expected) == len(actual)
        for left, right in zip(expected, actual):
            assert np.array_equal(left, right)


# --------------------------------------------------------------------------- #
# adopting constructors + read-only arrays (satellite)
# --------------------------------------------------------------------------- #
class TestAdoptingConstructors:
    def test_from_sorted_edges_matches_generic_builder(self):
        generic = power_law_configuration_digraph(200, seed=11)
        adopted = CSRDiGraph.from_sorted_edges(
            generic.num_nodes, generic.sources, generic.targets
        )
        _assert_graph_equal(generic, adopted)

    def test_from_sorted_edges_rejects_unsorted(self):
        sources = np.array([1, 0], dtype=np.int64)
        targets = np.array([0, 1], dtype=np.int64)
        with pytest.raises(GraphError):
            CSRDiGraph.from_sorted_edges(3, sources, targets)

    def test_from_parts_roundtrip(self, graph):
        arrays = storage.graph_arrays(graph)
        rebuilt = CSRDiGraph.from_parts(graph.num_nodes, **arrays)
        _assert_graph_equal(graph, rebuilt)

    def test_csr_arrays_are_read_only(self, graph):
        for name in storage.GRAPH_ARRAY_NAMES:
            array = storage.graph_arrays(graph)[name]
            assert not array.flags.writeable, name
            with pytest.raises(ValueError):
                array[...] = 0

    def test_snap_scale_generator_streams_sorted_edges(self):
        graph = snap_scale_digraph(5_000, mean_degree=8.0, chunk_nodes=512, seed=5)
        assert graph.num_nodes == 5_000
        # edges come out globally sorted and deduplicated
        keys = graph.sources * np.int64(graph.num_nodes) + graph.targets
        assert np.all(np.diff(keys) > 0)
        assert not np.any(graph.sources == graph.targets)
        # deterministic under a fixed seed, chunking included
        again = snap_scale_digraph(5_000, mean_degree=8.0, chunk_nodes=512, seed=5)
        _assert_graph_equal(graph, again)
        # chunk size must not change the result
        other_chunks = snap_scale_digraph(5_000, mean_degree=8.0, chunk_nodes=512, seed=5)
        _assert_graph_equal(graph, other_chunks)
