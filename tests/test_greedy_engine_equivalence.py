"""Scalar-vs-batched equivalence proofs for the lazy-greedy coverage engine.

The batched engine (:class:`repro.utils.lazy_heap.BatchedLazyGreedy` driving
:mod:`repro.core.batched_greedy`) claims *bit-identical selections* to the
seed scalar path: it replays the scalar heap's refresh schedule and
tie-breaking exactly, only the evaluations are vectorized.  These tests pin
that claim at the heap level (identical pop sequences under scripted value
decay) and end to end through every greedy consumer — Algorithm 1,
ThresholdGreedy + Fill, RM_with_Oracle, CA/CS-Greedy, the TI baselines and
the RMA sampling solver — plus the silent fallback for non-RR-set oracles.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import MonteCarloOracle, RRSetOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.core.batched_greedy import CoverageGreedyEngine, supports_batched_greedy
from repro.core.greedy import greedy_single_advertiser
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import SamplingParameters, one_batch_rm, rm_without_oracle
from repro.core.search import gamma_max
from repro.core.threshold_greedy import fill, threshold_greedy
from repro.diffusion.models import (
    IndependentCascadeModel,
    TrivalencyModel,
    WeightedCascadeModel,
)
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.collection import RRCollection
from repro.rrsets.generator import RRSetGenerator
from repro.runtime import ExecutionPolicy
from repro.utils.lazy_heap import BatchedLazyGreedy, LazyMarginalHeap

MODELS = [IndependentCascadeModel, WeightedCascadeModel, TrivalencyModel]

# Pin everything but the greedy engine so each pair differs in exactly one
# dimension: the scalar heap vs the batched coverage engine.
SCALAR = ExecutionPolicy.seed()
BATCHED = ExecutionPolicy(greedy_engine="batched")


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_digraph(250, out_degree=4, seed=1)


def _instance_and_oracle(graph, model_cls=WeightedCascadeModel, h=3, count=500, seed=5):
    model = model_cls(graph)
    n = graph.num_nodes
    advertisers = [
        Advertiser(budget=170.0 + 40.0 * i, cpe=1.0 + 0.5 * (i % 2)) for i in range(h)
    ]
    costs = np.random.default_rng(seed).uniform(0.5, 3.0, size=(h, n))
    instance = RMInstance(graph, model, advertisers, costs)
    probabilities = np.asarray(model.edge_probabilities(), dtype=np.float64)
    rr_sets = RRSetGenerator(graph, probabilities).generate_batch(count, rng=seed)
    tags = np.random.default_rng(seed + 1).integers(0, h, size=count)
    collection = RRCollection(n, h)
    for rr_set, tag in zip(rr_sets, tags):
        collection.add(rr_set, int(tag))
    return instance, RRSetOracle(collection, instance.gamma)


def _allocations_equal(one: Allocation, other: Allocation, h: int) -> bool:
    return all(one.seeds(i) == other.seeds(i) for i in range(h))


# --------------------------------------------------------------------- #
# heap-level identity
# --------------------------------------------------------------------- #
class _DecayingValues:
    """Scripted submodular-style values: non-increasing between rounds."""

    def __init__(self, keys, seed):
        rng = np.random.default_rng(seed)
        # Plenty of exact ties: values are small integers (like coverage counts).
        self.values = {key: float(v) for key, v in zip(keys, rng.integers(0, 8, len(keys)))}
        self._rng = rng

    def decay(self):
        for key in list(self.values):
            if self._rng.random() < 0.4:
                self.values[key] = max(0.0, self.values[key] - float(self._rng.integers(1, 3)))

    def scalar(self, key):
        return self.values[key]

    def batch(self, keys):
        return np.array([self.values[int(k)] for k in np.asarray(keys)], dtype=np.float64)


@pytest.mark.parametrize("seed", [0, 3, 9])
@pytest.mark.parametrize("batch_size", [1, 4, 64])
def test_batched_heap_pop_sequence_matches_scalar(seed, batch_size):
    """Same pushes + same value decay ⇒ identical pop sequence, tie for tie."""
    keys = list(range(60))
    table = _DecayingValues(keys, seed)
    scalar = LazyMarginalHeap(table.scalar)
    batched = BatchedLazyGreedy(table.batch, batch_size=batch_size)
    scalar.push_many(keys)
    batched.push_array(np.asarray(keys, dtype=np.int64))

    popped = []
    while len(scalar):
        a = scalar.pop_best()
        b = batched.pop_best()
        assert a == b
        popped.append(a)
        # A "selection" happened: values decay and both heaps are staled.
        table.decay()
        scalar.advance_round()
        batched.advance_round()
    assert batched.pop_best() is None
    assert len(popped) == len(keys)


def test_batched_heap_remove_and_membership():
    values = {k: float(k % 5) for k in range(20)}
    heap = BatchedLazyGreedy(
        lambda keys: np.array([values[int(k)] for k in keys]), batch_size=4
    )
    heap.push_array(np.arange(20, dtype=np.int64))
    assert len(heap) == 20 and 7 in heap
    heap.remove(7)
    assert len(heap) == 19 and 7 not in heap
    seen = set()
    while True:
        popped = heap.pop_best()
        if popped is None:
            break
        seen.add(popped[0])
    assert 7 not in seen and len(seen) == 19


def test_batched_heap_batches_evaluations():
    """Stale refreshes are amortised: far fewer calls than elements."""
    values = {k: 100.0 - k for k in range(256)}
    heap = BatchedLazyGreedy(
        lambda keys: np.array([values[int(k)] for k in keys]), batch_size=64
    )
    heap.push_array(np.arange(256, dtype=np.int64))
    for _ in range(32):
        heap.advance_round()  # stale everything, forcing refresh traffic
        heap.pop_best()
    assert heap.evaluation_calls < heap.elements_evaluated
    assert heap.elements_evaluated >= 256  # the initial bulk insert alone


def test_batched_heap_peek_does_not_consume():
    heap = BatchedLazyGreedy(
        lambda keys: np.asarray(keys, dtype=np.float64), batch_size=8
    )
    heap.push_array(np.arange(5, dtype=np.int64))
    assert heap.peek_best() == (4, 4.0)
    assert len(heap) == 5
    assert heap.pop_best() == (4, 4.0)
    assert len(heap) == 4


def test_batched_heap_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        BatchedLazyGreedy(lambda keys: keys, batch_size=0)


# --------------------------------------------------------------------- #
# consumer-level identity (RR-set oracle)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
@pytest.mark.parametrize("seed", [5, 11])
def test_cs_and_ca_greedy_bit_identical(graph, model_cls, seed):
    instance, oracle = _instance_and_oracle(graph, model_cls, seed=seed)
    h = instance.num_advertisers
    for solver in (cs_greedy, ca_greedy):
        scalar = solver(instance, oracle, policy=SCALAR)
        batched = solver(instance, oracle, policy=BATCHED)
        assert _allocations_equal(scalar.allocation, batched.allocation, h)
        assert scalar.revenue == batched.revenue
        assert scalar.depleted_budgets == batched.depleted_budgets


@pytest.mark.parametrize("seed", [5, 11, 42])
def test_greedy_single_advertiser_bit_identical(graph, seed):
    instance, oracle = _instance_and_oracle(graph, seed=seed)
    for advertiser in range(instance.num_advertisers):
        assert greedy_single_advertiser(
            instance, oracle, advertiser, policy=SCALAR
        ) == greedy_single_advertiser(
            instance, oracle, advertiser, policy=BATCHED
        )


def test_greedy_single_advertiser_candidate_subset(graph):
    instance, oracle = _instance_and_oracle(graph)
    candidates = list(range(0, graph.num_nodes, 3))
    assert greedy_single_advertiser(
        instance, oracle, 1, candidates=candidates, policy=SCALAR
    ) == greedy_single_advertiser(
        instance, oracle, 1, candidates=candidates, policy=BATCHED
    )


@pytest.mark.parametrize("gamma", [0.0, 0.5, 2.0, 10.0])
def test_threshold_greedy_bit_identical(graph, gamma):
    instance, oracle = _instance_and_oracle(graph)
    h = instance.num_advertisers
    scalar, b_scalar = threshold_greedy(instance, oracle, gamma, policy=SCALAR)
    batched, b_batched = threshold_greedy(instance, oracle, gamma, policy=BATCHED)
    assert b_scalar == b_batched
    assert _allocations_equal(scalar, batched, h)


def test_fill_bit_identical_from_partial_allocation(graph):
    instance, oracle = _instance_and_oracle(graph)
    h = instance.num_advertisers
    start = Allocation(h)
    for advertiser, node in [(0, 3), (0, 17), (1, 25), (2, 4)]:
        start.assign(node, advertiser)
    scalar = fill(instance, oracle, start, policy=SCALAR)
    batched = fill(instance, oracle, start, policy=BATCHED)
    assert _allocations_equal(scalar, batched, h)


@pytest.mark.parametrize("h", [1, 3, 4])
def test_rm_with_oracle_bit_identical(graph, h):
    """Covers all three dispatch arms of Algorithm 5 (h=1, h≤3, h≥4)."""
    instance, oracle = _instance_and_oracle(graph, h=h)
    scalar = rm_with_oracle(instance, oracle, policy=SCALAR)
    batched = rm_with_oracle(instance, oracle, policy=BATCHED)
    assert _allocations_equal(scalar.allocation, batched.allocation, h)
    assert scalar.revenue == batched.revenue
    assert scalar.metadata == batched.metadata


def test_gamma_max_bit_identical(graph):
    instance, oracle = _instance_and_oracle(graph)
    scalar = gamma_max(instance, oracle, policy=SCALAR)
    batched = gamma_max(instance, oracle, policy=BATCHED)
    assert scalar == batched
    subset = list(range(0, graph.num_nodes, 7))
    assert gamma_max(instance, oracle, candidates=subset, policy=SCALAR) == gamma_max(
        instance, oracle, candidates=subset, policy=BATCHED
    )


def test_coverage_engine_matches_oracle_marginals(graph):
    """Engine gains/rates equal the oracle's floats while seeds accumulate."""
    instance, oracle = _instance_and_oracle(graph)
    engine = CoverageGreedyEngine(instance, oracle)
    assert supports_batched_greedy(oracle, instance)
    rng = np.random.default_rng(2)
    seeds: dict[int, set[int]] = {i: set() for i in range(instance.num_advertisers)}
    for step, node in enumerate(rng.permutation(graph.num_nodes)[:40].tolist()):
        advertiser = step % instance.num_advertisers
        expected = oracle.marginal_revenue(advertiser, node, seeds[advertiser])
        assert engine.gain(advertiser, node) == expected
        key = np.array([engine.encode(node, advertiser)], dtype=np.int64)
        assert engine.gains(key)[0] == expected
        seeds[advertiser].add(node)
        engine.add_seed(advertiser, node)
    for advertiser, assigned in seeds.items():
        assert engine.revenue_for(advertiser) == pytest.approx(
            oracle.revenue(advertiser, assigned)
        )


# --------------------------------------------------------------------- #
# solver-level identity (sampling setting)
# --------------------------------------------------------------------- #
def _dataset_instance():
    from repro.datasets.registry import build_dataset

    data = build_dataset(
        "lastfm_like",
        num_advertisers=4,
        incentive="linear",
        alpha=0.1,
        scale=0.3,
        seed=3,
        singleton_rr_sets=200,
    )
    return data.instance


def test_rma_solver_bit_identical():
    instance = _dataset_instance()
    h = instance.num_advertisers
    params = SamplingParameters(
        epsilon=0.3, initial_rr_sets=512, max_rr_sets=2048, seed=9, policy=SCALAR
    )
    scalar = rm_without_oracle(instance, params)
    batched = rm_without_oracle(instance, replace(params, policy=BATCHED))
    assert _allocations_equal(scalar.allocation, batched.allocation, h)
    assert scalar.revenue == batched.revenue
    assert scalar.metadata == batched.metadata


def test_one_batch_rm_bit_identical():
    instance = _dataset_instance()
    h = instance.num_advertisers
    params = SamplingParameters(epsilon=0.3, seed=9, policy=SCALAR)
    scalar = one_batch_rm(instance, 800, params)
    batched = one_batch_rm(instance, 800, replace(params, policy=BATCHED))
    assert _allocations_equal(scalar.allocation, batched.allocation, h)
    assert scalar.revenue == batched.revenue


@pytest.mark.parametrize("solver", [ti_carm, ti_csrm], ids=["ti_carm", "ti_csrm"])
def test_ti_baselines_bit_identical(solver):
    instance = _dataset_instance()
    h = instance.num_advertisers
    params = TIParameters(
        epsilon=0.2, pilot_size=64, max_rr_sets_per_advertiser=512, seed=7, policy=SCALAR
    )
    scalar = solver(instance, params)
    batched = solver(instance, replace(params, policy=BATCHED))
    assert _allocations_equal(scalar.allocation, batched.allocation, h)
    assert scalar.revenue == batched.revenue
    assert scalar.metadata == batched.metadata


# --------------------------------------------------------------------- #
# fallback: non-RR-set oracles keep the seed scalar path
# --------------------------------------------------------------------- #
def test_batched_policy_falls_back_for_monte_carlo_oracle():
    tiny = preferential_attachment_digraph(30, out_degree=2, seed=2)
    model = WeightedCascadeModel(tiny)
    advertisers = [Advertiser(budget=25.0, cpe=1.0) for _ in range(2)]
    costs = np.full((2, tiny.num_nodes), 1.5)
    instance = RMInstance(tiny, model, advertisers, costs)
    results = []
    for policy in (SCALAR, BATCHED):
        oracle = MonteCarloOracle(instance, num_simulations=40, seed=11, policy=SCALAR)
        assert not supports_batched_greedy(oracle, instance)
        results.append(cs_greedy(instance, oracle, policy=policy))
    assert _allocations_equal(results[0].allocation, results[1].allocation, 2)
    assert results[0].revenue == results[1].revenue
