"""Tests for the seed incentive models and singleton-spread estimation."""

import numpy as np
import pytest

from repro.exceptions import ProblemDefinitionError
from repro.incentives.models import (
    ConstantIncentiveModel,
    DegreeIncentiveModel,
    LinearIncentiveModel,
    QuasiLinearIncentiveModel,
    SuperLinearIncentiveModel,
    incentive_model_by_name,
)
from repro.incentives.singleton import estimate_singleton_spreads
from repro.diffusion.simulation import exact_spread


class TestLinearModel:
    def test_cost_is_alpha_times_spread(self):
        model = LinearIncentiveModel(alpha=0.2)
        assert model.cost_of(10.0) == pytest.approx(2.0)

    def test_vectorised(self):
        model = LinearIncentiveModel(alpha=0.5)
        costs = model.costs(np.array([1.0, 4.0, 10.0]))
        assert np.allclose(costs, [0.5, 2.0, 5.0])

    def test_costs_scale_with_alpha(self):
        spreads = np.array([2.0, 5.0])
        low = LinearIncentiveModel(alpha=0.1).costs(spreads)
        high = LinearIncentiveModel(alpha=0.5).costs(spreads)
        assert (high > low).all()


class TestQuasiLinearModel:
    def test_formula(self):
        model = QuasiLinearIncentiveModel(alpha=0.3)
        spread = 5.0
        assert model.cost_of(spread) == pytest.approx(0.3 * spread * np.log(spread))

    def test_spread_of_one_clamped_to_min_cost(self):
        model = QuasiLinearIncentiveModel(alpha=0.3, min_cost=0.01)
        assert model.cost_of(1.0) == pytest.approx(0.01)

    def test_spread_below_one_does_not_go_negative(self):
        model = QuasiLinearIncentiveModel(alpha=0.3)
        assert model.cost_of(0.5) > 0.0


class TestSuperLinearModel:
    def test_formula(self):
        model = SuperLinearIncentiveModel(alpha=0.1)
        assert model.cost_of(4.0) == pytest.approx(1.6)

    def test_grows_faster_than_linear(self):
        spreads = np.array([2.0, 10.0, 50.0])
        linear = LinearIncentiveModel(alpha=0.1).costs(spreads)
        superlinear = SuperLinearIncentiveModel(alpha=0.1).costs(spreads)
        ratio = superlinear / linear
        assert (np.diff(ratio) > 0).all()


class TestOtherModels:
    def test_constant(self):
        model = ConstantIncentiveModel(alpha=3.0)
        assert np.allclose(model.costs(np.array([1.0, 100.0])), 3.0)

    def test_degree(self):
        model = DegreeIncentiveModel(alpha=2.0)
        assert model.cost_of(4.0) == pytest.approx(10.0)


class TestValidationAndRegistry:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LinearIncentiveModel(alpha=0.0)

    def test_negative_spread_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            LinearIncentiveModel().costs(np.array([-1.0]))

    def test_non_vector_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            LinearIncentiveModel().costs(np.zeros((2, 2)))

    def test_min_cost_clamp(self):
        model = LinearIncentiveModel(alpha=0.1, min_cost=5.0)
        assert model.cost_of(1.0) == pytest.approx(5.0)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("linear", LinearIncentiveModel),
            ("quasilinear", QuasiLinearIncentiveModel),
            ("superlinear", SuperLinearIncentiveModel),
            ("constant", ConstantIncentiveModel),
            ("degree", DegreeIncentiveModel),
        ],
    )
    def test_registry_lookup(self, name, cls):
        assert isinstance(incentive_model_by_name(name), cls)

    def test_registry_case_insensitive(self):
        assert isinstance(incentive_model_by_name("LINEAR"), LinearIncentiveModel)

    def test_registry_unknown_name(self):
        with pytest.raises(ProblemDefinitionError):
            incentive_model_by_name("unknown")


class TestSingletonSpreads:
    def test_estimates_close_to_exact(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.5)
        estimates = estimate_singleton_spreads(diamond_graph, probs, num_rr_sets=8000, rng=2)
        for node in range(diamond_graph.num_nodes):
            truth = exact_spread(diamond_graph, probs, [node])
            assert estimates[node] == pytest.approx(truth, rel=0.15)

    def test_minimum_of_one(self, diamond_graph):
        probs = np.zeros(diamond_graph.num_edges)
        estimates = estimate_singleton_spreads(diamond_graph, probs, num_rr_sets=200, rng=2)
        assert (estimates >= 1.0).all()

    def test_invalid_pool_size(self, diamond_graph):
        with pytest.raises(Exception):
            estimate_singleton_spreads(diamond_graph, np.zeros(diamond_graph.num_edges), 0)
