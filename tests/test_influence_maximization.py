"""Tests for the plain influence-maximization substrate."""

import numpy as np
import pytest

from repro.core.influence_maximization import (
    greedy_max_coverage,
    influence_maximization,
    spread_of_seeds,
)
from repro.diffusion.models import WeightedCascadeModel
from repro.diffusion.simulation import exact_spread
from repro.exceptions import SolverError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph


class TestGreedyMaxCoverage:
    def test_selects_best_single_node(self):
        rr_sets = [np.array([0, 1]), np.array([1, 2]), np.array([1]), np.array([3])]
        selected, covered = greedy_max_coverage(rr_sets, num_nodes=4, seed_count=1)
        assert selected == [1]
        assert covered == 3

    def test_three_seeds_cover_everything(self):
        rr_sets = [np.array([0]), np.array([1]), np.array([0, 1]), np.array([2])]
        selected, covered = greedy_max_coverage(rr_sets, num_nodes=3, seed_count=3)
        assert covered == len(rr_sets)
        assert set(selected) == {0, 1, 2}

    def test_stops_when_no_gain_left(self):
        rr_sets = [np.array([0]), np.array([0])]
        selected, covered = greedy_max_coverage(rr_sets, num_nodes=5, seed_count=4)
        assert selected == [0]
        assert covered == 2

    def test_coverage_monotone_in_seed_count(self):
        rng = np.random.default_rng(1)
        rr_sets = [rng.choice(20, size=rng.integers(1, 5), replace=False) for _ in range(50)]
        coverages = [
            greedy_max_coverage(rr_sets, num_nodes=20, seed_count=k)[1] for k in range(1, 6)
        ]
        assert all(a <= b for a, b in zip(coverages, coverages[1:]))

    def test_greedy_achieves_63_percent_of_best_single_swap(self):
        """Sanity proxy for the (1 - 1/e) guarantee on random instances."""
        rng = np.random.default_rng(2)
        rr_sets = [rng.choice(15, size=rng.integers(1, 4), replace=False) for _ in range(80)]
        _, greedy_cov = greedy_max_coverage(rr_sets, num_nodes=15, seed_count=3)
        # Exhaustive optimum over all 3-subsets of 15 nodes.
        import itertools

        best = 0
        for subset in itertools.combinations(range(15), 3):
            covered = sum(1 for rr in rr_sets if set(subset) & set(np.asarray(rr).tolist()))
            best = max(best, covered)
        assert greedy_cov >= (1 - 1 / np.e) * best - 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            greedy_max_coverage([], 5, 1)
        with pytest.raises(SolverError):
            greedy_max_coverage([np.array([0])], 5, 0)


class TestInfluenceMaximization:
    def test_picks_the_hub_on_a_star(self, star_graph):
        probs = np.ones(star_graph.num_edges)
        seeds, spread = influence_maximization(star_graph, probs, seed_count=1,
                                               num_rr_sets=2000, rng=1)
        assert seeds == [0]
        assert spread == pytest.approx(5.0, rel=0.1)

    def test_spread_estimate_close_to_exact(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.5)
        seeds, spread = influence_maximization(diamond_graph, probs, seed_count=1,
                                               num_rr_sets=8000, rng=2)
        truth = exact_spread(diamond_graph, probs, seeds)
        assert spread == pytest.approx(truth, rel=0.1)

    def test_more_seeds_more_spread(self):
        graph = preferential_attachment_digraph(120, out_degree=3, seed=3)
        probs = WeightedCascadeModel(graph).edge_probabilities()
        _, spread_one = influence_maximization(graph, probs, 1, num_rr_sets=2000, rng=3)
        _, spread_five = influence_maximization(graph, probs, 5, num_rr_sets=2000, rng=3)
        assert spread_five >= spread_one

    def test_spread_of_seeds_independent_pool(self, diamond_graph):
        probs = np.full(diamond_graph.num_edges, 0.5)
        value = spread_of_seeds(diamond_graph, probs, [0], num_rr_sets=6000, rng=4)
        truth = exact_spread(diamond_graph, probs, [0])
        assert value == pytest.approx(truth, rel=0.1)

    def test_invalid_rr_count(self, diamond_graph):
        with pytest.raises(SolverError):
            influence_maximization(
                diamond_graph, np.full(diamond_graph.num_edges, 0.5), 1, num_rr_sets=0
            )
