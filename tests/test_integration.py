"""End-to-end integration tests across the whole pipeline.

These mirror the paper's workflow at miniature scale: build a dataset,
run RMA and the baselines, evaluate with an independent estimator, and check
the qualitative relationships the paper reports (RMA competitive or better,
budgets respected, SUBSIM equivalent in quality).
"""

import numpy as np
import pytest

from repro.advertising.oracle import ExactOracle
from repro.baselines.ti_common import TIParameters
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.datasets.registry import build_dataset
from repro.experiments.metrics import evaluate_allocation, independent_evaluator
from repro.experiments.runner import compare_algorithms


@pytest.fixture(scope="module")
def lastfm_dataset():
    return build_dataset(
        "lastfm_like", num_advertisers=4, scale=0.25, seed=13, singleton_rr_sets=300
    )


@pytest.fixture(scope="module")
def shared_evaluator(lastfm_dataset):
    return independent_evaluator(lastfm_dataset.instance, num_rr_sets=6000, seed=99)


class TestEndToEnd:
    def test_full_comparison_pipeline(self, lastfm_dataset, shared_evaluator):
        instance = lastfm_dataset.instance
        runs = compare_algorithms(
            ["RMA", "TI-CSRM", "TI-CARM"],
            instance,
            evaluator=shared_evaluator,
            sampling_params=SamplingParameters(initial_rr_sets=512, max_rr_sets=2048, seed=5),
            ti_params=TIParameters(
                epsilon=0.15, pilot_size=128, max_rr_sets_per_advertiser=512, seed=5
            ),
        )
        by_name = {run.algorithm: run for run in runs}
        assert set(by_name) == {"RMA", "TI-CSRM", "TI-CARM"}
        # Every algorithm produced a non-trivial allocation.
        for run in runs:
            assert run.evaluation.revenue > 0.0
        # The paper's headline: RMA matches or beats the baselines on revenue.
        assert by_name["RMA"].evaluation.revenue >= 0.9 * max(
            by_name["TI-CSRM"].evaluation.revenue, by_name["TI-CARM"].evaluation.revenue
        )

    def test_rma_budget_respected_under_independent_evaluation(
        self, lastfm_dataset, shared_evaluator
    ):
        instance = lastfm_dataset.instance
        params = SamplingParameters(initial_rr_sets=1024, max_rr_sets=2048, rho=0.1, seed=3)
        result = rm_without_oracle(instance, params)
        evaluation = evaluate_allocation(
            instance, result.allocation, evaluator=shared_evaluator
        )
        for advertiser, seeds in result.allocation.items():
            revenue = evaluation.per_advertiser_revenue[advertiser]
            cost = evaluation.per_advertiser_cost[advertiser]
            limit = (1.0 + params.rho) * instance.budget(advertiser)
            # Allow estimation slack: the guarantee is w.h.p. and the evaluator
            # is an independent finite sample.
            assert revenue + cost <= limit * 1.25

    def test_rate_of_return_favors_rma_over_ti(self, lastfm_dataset, shared_evaluator):
        """Figure 6(b): RMA's rate of return is at least comparable to TI-CSRM's."""
        instance = lastfm_dataset.instance
        runs = compare_algorithms(
            ["RMA", "TI-CSRM"],
            instance,
            evaluator=shared_evaluator,
            sampling_params=SamplingParameters(initial_rr_sets=512, max_rr_sets=1024, seed=8),
            ti_params=TIParameters(
                epsilon=0.15, pilot_size=128, max_rr_sets_per_advertiser=512, seed=8
            ),
        )
        by_name = {run.algorithm: run for run in runs}
        assert (
            by_name["RMA"].evaluation.rate_of_return
            >= by_name["TI-CSRM"].evaluation.rate_of_return * 0.85
        )

    def test_subsim_and_standard_generators_agree(self, lastfm_dataset, shared_evaluator):
        """Figure 10: SUBSIM acceleration must not change solution quality much."""
        instance = lastfm_dataset.instance
        from repro.runtime import ExecutionPolicy

        standard = rm_without_oracle(
            instance,
            SamplingParameters(
                initial_rr_sets=512, max_rr_sets=1024, seed=21, policy=ExecutionPolicy.seed()
            ),
        )
        subsim = rm_without_oracle(
            instance,
            SamplingParameters(
                initial_rr_sets=512,
                max_rr_sets=1024,
                seed=21,
                policy=ExecutionPolicy(rr_engine="subsim"),
            ),
        )
        revenue_standard = evaluate_allocation(
            instance, standard.allocation, evaluator=shared_evaluator
        ).revenue
        revenue_subsim = evaluate_allocation(
            instance, subsim.allocation, evaluator=shared_evaluator
        ).revenue
        assert revenue_subsim == pytest.approx(revenue_standard, rel=0.25)

    def test_superlinear_costs_hurt_ti_carm_most(self, shared_evaluator):
        """Figure 1 (bottom): under superlinear pricing TI-CARM collapses."""
        data = build_dataset(
            "lastfm_like",
            num_advertisers=4,
            incentive="superlinear",
            alpha=0.3,
            scale=0.25,
            seed=13,
            singleton_rr_sets=300,
        )
        instance = data.instance
        evaluator = independent_evaluator(instance, num_rr_sets=4000, seed=17)
        runs = compare_algorithms(
            ["RMA", "TI-CARM"],
            instance,
            evaluator=evaluator,
            sampling_params=SamplingParameters(initial_rr_sets=512, max_rr_sets=1024, seed=5),
            ti_params=TIParameters(
                epsilon=0.15, pilot_size=128, max_rr_sets_per_advertiser=512, seed=5
            ),
        )
        by_name = {run.algorithm: run for run in runs}
        assert by_name["RMA"].evaluation.revenue >= by_name["TI-CARM"].evaluation.revenue

    def test_oracle_and_sampling_solvers_agree_on_small_instance(self, probabilistic_instance):
        """RM_with_Oracle on the exact oracle vs RMA: same ballpark revenue."""
        exact = ExactOracle(probabilistic_instance)
        oracle_result = rm_with_oracle(probabilistic_instance, exact, tau=0.1)
        sampling_result = rm_without_oracle(
            probabilistic_instance,
            SamplingParameters(initial_rr_sets=2048, max_rr_sets=4096, seed=2, rho=0.1),
        )
        sampled_revenue_true = exact.total_revenue(sampling_result.allocation)
        assert sampled_revenue_true >= 0.6 * oracle_result.revenue

    def test_dataset_reuse_is_deterministic(self):
        first = build_dataset("dblp_like", num_advertisers=3, scale=0.08, seed=4,
                              singleton_rr_sets=150)
        second = build_dataset("dblp_like", num_advertisers=3, scale=0.08, seed=4,
                               singleton_rr_sets=150)
        assert first.instance.budgets().tolist() == second.instance.budgets().tolist()
        assert np.allclose(first.instance.cost_matrix(), second.instance.cost_matrix())
