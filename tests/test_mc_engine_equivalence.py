"""Statistical-equivalence harness for the batched Monte-Carlo cascade engine.

Three layers of evidence, mirroring the RR-engine equivalence suite:

1. **Bit-identity** — the default path in :mod:`repro.diffusion.simulation`
   must reproduce the seed implementation preserved in
   :mod:`repro.diffusion.legacy` exactly (same RNG draw order, same floats).
2. **Statistical equivalence** — the batched engine draws in a different
   order, so it is pinned with fixed-seed statistical tests instead: a
   two-sample Kolmogorov–Smirnov test on the per-cascade activation-size
   distributions and mean-within-kσ checks against the legacy estimator,
   ``exact_spread`` and the RR-set estimator, across IC / WC / Trivalency
   micro-graphs.
3. **Enumeration pin** — the reachable-edge-restricted ``exact_spread``
   must agree with the seed tree's full ``itertools.product`` enumeration
   wherever both are feasible.

All thresholds are evaluated on fixed seeds, so the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import MonteCarloOracle
from repro.diffusion.engine import (
    default_batch_size,
    monte_carlo_spread as batched_monte_carlo_spread,
    simulate_cascades_batch,
    singleton_spreads_monte_carlo as batched_singleton_spreads,
)
from repro.diffusion.legacy import (
    legacy_exact_spread,
    legacy_monte_carlo_spread,
    legacy_simulate_cascade,
    legacy_singleton_spreads_monte_carlo,
)
from repro.diffusion.models import (
    IndependentCascadeModel,
    TrivalencyModel,
    WeightedCascadeModel,
)
from repro.diffusion.simulation import (
    exact_spread,
    monte_carlo_spread,
    simulate_cascade,
    singleton_spreads_monte_carlo,
)
from repro.exceptions import DiffusionError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.estimators import estimate_spread
from repro.rrsets.generator import RRSetGenerator
from repro.runtime import ExecutionPolicy

MODELS = [IndependentCascadeModel, WeightedCascadeModel, TrivalencyModel]


def _probabilities(model_cls, graph):
    if model_cls is TrivalencyModel:
        model = TrivalencyModel(graph, values=(0.6, 0.3, 0.1), seed=4)
    elif model_cls is IndependentCascadeModel:
        model = IndependentCascadeModel(graph, probability=0.3)
    else:
        model = model_cls(graph)
    return np.asarray(model.edge_probabilities(), dtype=np.float64)


@pytest.fixture(scope="module")
def micro_graph():
    """A 30-node preferential-attachment micro-graph."""
    return preferential_attachment_digraph(30, out_degree=3, seed=2)


@pytest.fixture(scope="module")
def medium_graph():
    """A 200-node graph for the bit-identity sweeps."""
    return preferential_attachment_digraph(200, out_degree=4, seed=1)


def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (no scipy dependency)."""
    grid = np.union1d(sample_a, sample_b)
    cdf_a = np.searchsorted(np.sort(sample_a), grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(np.sort(sample_b), grid, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_threshold(n: int, m: int, alpha: float = 1e-3) -> float:
    """Critical KS distance at significance ``alpha`` (asymptotic form)."""
    c = np.sqrt(-0.5 * np.log(alpha / 2.0))
    return float(c * np.sqrt((n + m) / (n * m)))


def _legacy_sizes(graph, probabilities, seeds, count, seed):
    rng = np.random.default_rng(seed)
    return np.array(
        [
            len(legacy_simulate_cascade(graph, probabilities, seeds, rng))
            for _ in range(count)
        ],
        dtype=np.float64,
    )


def _batched_sizes(graph, probabilities, seeds, count, seed):
    bitmap = simulate_cascades_batch(
        graph, probabilities, seeds, num_cascades=count, rng=seed
    )
    return bitmap.sum(axis=1).astype(np.float64)


# --------------------------------------------------------------------------- #
# 1. bit-identity of the default (seed) path
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
@pytest.mark.parametrize("seed", [3, 17])
def test_default_cascade_path_bit_identical_to_legacy(medium_graph, model_cls, seed):
    """Same seed ⇒ identical activated sets, cascade by cascade."""
    probabilities = _probabilities(model_cls, medium_graph)
    rng_new = np.random.default_rng(seed)
    rng_old = np.random.default_rng(seed)
    for _ in range(40):
        new = simulate_cascade(medium_graph, probabilities, [0, 5, 9], rng_new)
        old = legacy_simulate_cascade(medium_graph, probabilities, [0, 5, 9], rng_old)
        assert new == old


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
def test_default_monte_carlo_spread_bit_identical_to_legacy(medium_graph, model_cls):
    probabilities = _probabilities(model_cls, medium_graph)
    new = monte_carlo_spread(medium_graph, probabilities, [1, 2, 3], 150, rng=11)
    old = legacy_monte_carlo_spread(medium_graph, probabilities, [1, 2, 3], 150, rng=11)
    assert new == old


def test_default_singleton_spreads_bit_identical_to_legacy(micro_graph):
    probabilities = _probabilities(WeightedCascadeModel, micro_graph)
    new = singleton_spreads_monte_carlo(micro_graph, probabilities, 60, rng=5)
    old = legacy_singleton_spreads_monte_carlo(micro_graph, probabilities, 60, rng=5)
    assert np.array_equal(new, old)


# --------------------------------------------------------------------------- #
# 2. statistical equivalence of the batched engine
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
def test_batched_vs_legacy_ks_on_cascade_sizes(micro_graph, model_cls):
    """Per-cascade activation sizes must come from the same distribution."""
    probabilities = _probabilities(model_cls, micro_graph)
    seeds = [0, 4]
    count = 4000
    legacy_sample = _legacy_sizes(micro_graph, probabilities, seeds, count, seed=23)
    batched_sample = _batched_sizes(micro_graph, probabilities, seeds, count, seed=29)
    statistic = _ks_statistic(legacy_sample, batched_sample)
    assert statistic <= _ks_threshold(count, count)


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
def test_batched_vs_legacy_mean_within_3_sigma(micro_graph, model_cls):
    probabilities = _probabilities(model_cls, micro_graph)
    seeds = [1, 7]
    count = 4000
    legacy_sample = _legacy_sizes(micro_graph, probabilities, seeds, count, seed=31)
    batched_sample = _batched_sizes(micro_graph, probabilities, seeds, count, seed=37)
    pooled_se = float(
        np.sqrt(legacy_sample.var() / count + batched_sample.var() / count)
    )
    assert abs(legacy_sample.mean() - batched_sample.mean()) <= 3.0 * pooled_se + 1e-9


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
def test_all_four_estimators_agree_on_micro_graph(model_cls):
    """Batched MC, legacy MC, exact enumeration and the RR-set estimator must
    tell the same story about σ(seeds) on a graph where all four run."""
    graph = from_edge_list(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (4, 5), (1, 5)], num_nodes=6
    )
    probabilities = _probabilities(model_cls, graph)
    seeds = [0]
    exact = exact_spread(graph, probabilities, seeds)

    count = 6000
    batched_sample = _batched_sizes(graph, probabilities, seeds, count, seed=41)
    legacy_sample = _legacy_sizes(graph, probabilities, seeds, 2000, seed=43)
    batched_se = float(np.sqrt(batched_sample.var() / batched_sample.size))
    legacy_se = float(np.sqrt(legacy_sample.var() / legacy_sample.size))
    assert batched_sample.mean() == pytest.approx(exact, abs=4 * batched_se + 1e-9)
    assert legacy_sample.mean() == pytest.approx(exact, abs=4 * legacy_se + 1e-9)

    num_rr = 20000
    rr_sets = RRSetGenerator(graph, probabilities).generate_batch(num_rr, rng=47)
    rr_estimate = estimate_spread(rr_sets, seeds, graph.num_nodes)
    # σ̂ = n·f̂ with f̂ a binomial proportion over num_rr trials.
    fraction = rr_estimate / graph.num_nodes
    rr_se = graph.num_nodes * float(
        np.sqrt(max(fraction * (1 - fraction), 1e-12) / num_rr)
    )
    assert rr_estimate == pytest.approx(exact, abs=4 * rr_se + 1e-9)


def test_batched_singleton_spreads_agree_with_exact():
    graph = from_edge_list(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (4, 5), (1, 5)], num_nodes=6
    )
    probabilities = _probabilities(IndependentCascadeModel, graph)
    nodes = [0, 2, 5]
    count = 4000
    batched = batched_singleton_spreads(
        graph, probabilities, num_simulations=count, rng=53, nodes=nodes
    )
    for index, node in enumerate(nodes):
        exact = exact_spread(graph, probabilities, [node])
        # Cascade sizes are bounded by n = 6, so n/2 over-covers their std.
        band = 4 * (graph.num_nodes / 2) / np.sqrt(count)
        assert batched[index] == pytest.approx(exact, abs=band)


def test_monte_carlo_oracle_batched_policy_is_statistically_equivalent():
    graph = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])
    model = IndependentCascadeModel(graph, probability=0.5)
    advertisers = [Advertiser(budget=10.0, cpe=2.0)]
    costs = np.full((1, graph.num_nodes), 1.0)
    instance = RMInstance(graph, model, advertisers, costs)
    sequential = MonteCarloOracle(
        instance, num_simulations=6000, seed=3, policy=ExecutionPolicy.seed()
    )
    batched = MonteCarloOracle(
        instance, num_simulations=6000, seed=3, policy=ExecutionPolicy(mc_engine="batched")
    )
    exact = 2.0 * exact_spread(graph, model.edge_probabilities(), [0])
    assert sequential.revenue(0, [0]) == pytest.approx(exact, rel=0.05)
    assert batched.revenue(0, [0]) == pytest.approx(exact, rel=0.05)


def test_monte_carlo_oracle_seed_policy_reproduces_seed_stream():
    """Under the seed policy, the oracle's first query must equal the legacy
    estimator driven from the same seed — the seed-compatibility contract."""
    graph = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3)])
    model = IndependentCascadeModel(graph, probability=0.5)
    advertisers = [Advertiser(budget=10.0, cpe=2.0)]
    costs = np.full((1, graph.num_nodes), 1.0)
    instance = RMInstance(graph, model, advertisers, costs)
    oracle = MonteCarloOracle(
        instance, num_simulations=400, seed=9, policy=ExecutionPolicy.seed()
    )
    expected = 2.0 * legacy_monte_carlo_spread(
        graph,
        np.asarray(model.edge_probabilities()),
        [0, 1],
        400,
        rng=np.random.default_rng(9),
    )
    assert oracle.revenue(0, [0, 1]) == expected


# --------------------------------------------------------------------------- #
# 3. batched-engine API behaviour
# --------------------------------------------------------------------------- #
def test_simulate_cascades_batch_shape_and_seed_rows(micro_graph):
    probabilities = _probabilities(WeightedCascadeModel, micro_graph)
    bitmap = simulate_cascades_batch(
        micro_graph, probabilities, [2, 8], num_cascades=17, rng=7
    )
    assert bitmap.shape == (17, micro_graph.num_nodes)
    assert bitmap.dtype == np.bool_
    assert bitmap[:, [2, 8]].all()


def test_simulate_cascades_batch_empty_seeds_all_inactive(micro_graph):
    probabilities = _probabilities(WeightedCascadeModel, micro_graph)
    bitmap = simulate_cascades_batch(micro_graph, probabilities, [], num_cascades=3, rng=0)
    assert not bitmap.any()


def test_batched_engine_input_validation(micro_graph):
    probabilities = _probabilities(WeightedCascadeModel, micro_graph)
    with pytest.raises(DiffusionError):
        simulate_cascades_batch(micro_graph, probabilities, [0], num_cascades=0)
    with pytest.raises(DiffusionError):
        simulate_cascades_batch(micro_graph, probabilities, [999], num_cascades=1)
    with pytest.raises(DiffusionError):
        batched_monte_carlo_spread(micro_graph, probabilities, [0], num_simulations=0)
    with pytest.raises(DiffusionError):
        batched_monte_carlo_spread(
            micro_graph, probabilities, [0], num_simulations=10, batch_size=0
        )
    with pytest.raises(DiffusionError):
        simulate_cascades_batch(micro_graph, np.ones(3), [0], num_cascades=1)


def test_batched_monte_carlo_spread_empty_seeds_zero(micro_graph):
    probabilities = _probabilities(WeightedCascadeModel, micro_graph)
    assert batched_monte_carlo_spread(micro_graph, probabilities, [], 10) == 0.0


def test_batch_size_chunking_preserves_the_estimate(micro_graph):
    """Chunked and single-batch runs agree statistically (different streams)."""
    probabilities = _probabilities(IndependentCascadeModel, micro_graph)
    whole = batched_monte_carlo_spread(
        micro_graph, probabilities, [0, 1], 3000, rng=61, batch_size=3000
    )
    chunked = batched_monte_carlo_spread(
        micro_graph, probabilities, [0, 1], 3000, rng=67, batch_size=7
    )
    sizes = _batched_sizes(micro_graph, probabilities, [0, 1], 1000, seed=71)
    se = float(np.sqrt(sizes.var() / 3000))
    assert whole == pytest.approx(chunked, abs=6 * se + 1e-9)


def test_default_batch_size_respects_memory_cap():
    assert default_batch_size(20_000, 10_000) * 20_000 <= 32 * 1024 * 1024
    assert default_batch_size(10, 3) == 3
    assert default_batch_size(10, 0) == 1


def test_disconnected_cascades_stay_in_their_component():
    """Two disjoint components: cascades must never leak across them."""
    graph = from_edge_list([(0, 1), (1, 2), (3, 4), (4, 5)], num_nodes=6)
    bitmap = simulate_cascades_batch(
        graph, np.ones(graph.num_edges), [0], num_cascades=50, rng=13
    )
    assert bitmap[:, :3].all()
    assert not bitmap[:, 3:].any()


# --------------------------------------------------------------------------- #
# 4. exact_spread enumeration pin (satellite)
# --------------------------------------------------------------------------- #
EXACT_PIN_CASES = [
    ([(0, 1), (1, 2), (2, 3)], 4, [0], 0.5),
    ([(0, 1), (0, 2), (1, 3), (2, 3)], 4, [0], 0.3),
    ([(0, 1), (0, 2), (1, 3), (2, 3)], 4, [1, 2], 0.7),
    ([(0, 1), (1, 0), (1, 2), (2, 0)], 3, [0], 0.4),  # cyclic
    ([(0, 1), (2, 3), (3, 4)], 5, [0], 0.6),  # seed sees 1 of 3 edges
]


@pytest.mark.parametrize("edges,num_nodes,seeds,probability", EXACT_PIN_CASES)
def test_restricted_enumeration_matches_legacy_full_enumeration(
    edges, num_nodes, seeds, probability
):
    graph = from_edge_list(edges, num_nodes=num_nodes)
    probabilities = np.full(graph.num_edges, probability)
    assert exact_spread(graph, probabilities, seeds) == pytest.approx(
        legacy_exact_spread(graph, probabilities, seeds), abs=1e-12
    )


def test_restricted_enumeration_matches_legacy_on_heterogeneous_probs():
    graph = from_edge_list([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], num_nodes=5)
    probabilities = np.array([0.9, 0.1, 0.5, 1.0, 0.0])
    for seeds in ([0], [1], [0, 2], [4]):
        assert exact_spread(graph, probabilities, seeds) == pytest.approx(
            legacy_exact_spread(graph, probabilities, seeds), abs=1e-12
        )


def test_restricted_enumeration_handles_graphs_the_full_one_cannot():
    """A long chain hanging off node 2 is unreachable from node 0: the new
    enumeration only sums over the reachable edge, the legacy one refuses."""
    edges = [(0, 1)] + [(i, i + 1) for i in range(2, 30)]
    graph = from_edge_list(edges, num_nodes=31)
    probabilities = np.full(graph.num_edges, 0.5)
    with pytest.raises(DiffusionError):
        legacy_exact_spread(graph, probabilities, [0])
    assert exact_spread(graph, probabilities, [0]) == pytest.approx(1.5)


def test_restricted_enumeration_still_bounds_reachable_edges():
    edges = [(i, i + 1) for i in range(25)]
    graph = from_edge_list(edges)
    probabilities = np.full(graph.num_edges, 0.5)
    with pytest.raises(DiffusionError):
        exact_spread(graph, probabilities, [0])
    # From the chain's tail only 5 edges are reachable: feasible now.
    assert exact_spread(graph, probabilities, [20]) == pytest.approx(
        sum(0.5 ** k for k in range(6))
    )


def test_restricted_enumeration_seeds_with_no_reachable_edges():
    graph = from_edge_list([(0, 1)], num_nodes=3)
    probabilities = np.full(graph.num_edges, 0.8)
    assert exact_spread(graph, probabilities, [1, 2]) == pytest.approx(2.0)
