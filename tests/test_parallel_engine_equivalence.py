"""Equivalence harness for the sharded parallel execution engine.

Three tiers, mirroring the RR / MC / greedy engine suites:

1. **Serial fall-back bit-identity** — ``n_jobs=1`` (or ``None``) must route
   through the untouched in-process engines: identical RR-sets, identical
   spread floats, identical solver results.
2. **Fixed-``(seed, n_jobs)`` bit-reproducibility** — the sharded paths are
   a pure function of the seed material and the shard layout: repeated runs
   match bit for bit, and the ``REPRO_MAX_JOBS`` process cap (which shrinks
   the pool without touching the shard layout) must not change any result.
3. **Statistical equivalence** — ``n_jobs>1`` draws different RNG substreams
   than the serial engines, so parallel Monte-Carlo estimates are pinned
   against the serial batched engine with a two-sample Kolmogorov–Smirnov
   test over repeated estimates and mean-within-3σ checks.

All thresholds are evaluated on fixed seeds, so the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.diffusion.engine import (
    monte_carlo_spread as engine_monte_carlo_spread,
    simulate_cascades_batch,
    singleton_spreads_monte_carlo as engine_singleton_spreads,
)
from repro.diffusion.models import WeightedCascadeModel
from repro.exceptions import PolicyError, SamplingError, SolverError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph
from repro.parallel import (
    MAX_JOBS_ENV,
    ShardedExecutor,
    resolve_n_jobs,
    shard_counts,
    worker_process_cap,
)
from repro.parallel.executor import _default_start_method
from repro.parallel.mc import sharded_spread
from repro.parallel.rr import run_generation_shards, split_flat
from repro.rrsets.collection import RRCollection
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import ExecutionPolicy

GENERATORS = [RRSetGenerator, SubsimRRGenerator]


@pytest.fixture(scope="module")
def micro_graph():
    """A 60-node preferential-attachment micro-graph."""
    return preferential_attachment_digraph(60, out_degree=3, seed=2)


@pytest.fixture(scope="module")
def wc_probabilities(micro_graph):
    return np.asarray(
        WeightedCascadeModel(micro_graph).edge_probabilities(), dtype=np.float64
    )


def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (no scipy dependency)."""
    grid = np.union1d(sample_a, sample_b)
    cdf_a = np.searchsorted(np.sort(sample_a), grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(np.sort(sample_b), grid, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_threshold(n: int, m: int, alpha: float = 1e-3) -> float:
    """Critical KS distance at significance ``alpha`` (asymptotic form)."""
    c = np.sqrt(-0.5 * np.log(alpha / 2.0))
    return float(c * np.sqrt((n + m) / (n * m)))


# --------------------------------------------------------------------------- #
# executor plumbing
# --------------------------------------------------------------------------- #
class TestExecutorPlumbing:
    def test_resolve_n_jobs(self):
        import os

        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4
        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)

    def test_shard_counts_partition(self):
        counts = shard_counts(10, 4)
        assert counts.sum() == 10
        assert counts.tolist() == [3, 3, 2, 2]

    def test_shard_counts_trims_empty_shards(self):
        assert shard_counts(2, 4).tolist() == [1, 1]
        assert shard_counts(0, 4).size == 0

    def test_shard_counts_depends_only_on_inputs(self):
        assert np.array_equal(shard_counts(1000, 3), shard_counts(1000, 3))

    def test_shard_counts_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_counts(-1, 2)
        with pytest.raises(ValueError):
            shard_counts(5, 0)

    def test_worker_process_cap_env(self, monkeypatch):
        monkeypatch.delenv(MAX_JOBS_ENV, raising=False)
        assert worker_process_cap() is None
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        assert worker_process_cap() == 2
        # Invalid values are rejected with a warning naming the offender.
        monkeypatch.setenv(MAX_JOBS_ENV, "not-a-number")
        with pytest.warns(RuntimeWarning, match="not-a-number"):
            assert worker_process_cap() is None
        monkeypatch.setenv(MAX_JOBS_ENV, "0")
        with pytest.warns(RuntimeWarning, match="positive"):
            assert worker_process_cap() is None

    def test_default_start_method_is_valid(self):
        import multiprocessing

        assert _default_start_method() in multiprocessing.get_all_start_methods()

    def test_start_method_env_override_validated(self, monkeypatch):
        from repro.exceptions import ExecutionError
        from repro.parallel import START_METHOD_ENV

        monkeypatch.setenv(START_METHOD_ENV, "fork")
        assert _default_start_method() == "fork"
        monkeypatch.setenv(START_METHOD_ENV, "teleport")
        with pytest.raises(ExecutionError, match="teleport"):
            _default_start_method()

    def test_executor_preserves_shard_order(self):
        executor = ShardedExecutor(2)
        results = executor.run(_echo_task, 10, list(range(7)))
        assert results == [10 + shard for shard in range(7)]

    def test_executor_inline_when_single_shard(self):
        executor = ShardedExecutor(4)
        assert executor.run(_echo_task, 1, [5]) == [6]
        assert executor.run(_echo_task, 1, []) == []


def _echo_task(payload, shard):
    return payload + shard


# --------------------------------------------------------------------------- #
# 1 + 2. RR generation: serial identity and sharded reproducibility
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("generator_cls", GENERATORS, ids=lambda c: c.__name__)
class TestParallelGeneration:
    def test_n_jobs_one_bit_identical_to_serial(
        self, micro_graph, wc_probabilities, generator_cls
    ):
        parallel = generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
            40, rng=7, n_jobs=1
        )
        serial = generator_cls(micro_graph, wc_probabilities).generate_batch(40, rng=7)
        assert len(parallel) == len(serial)
        for a, b in zip(parallel, serial):
            assert np.array_equal(a, b)

    def test_default_n_jobs_is_serial(self, micro_graph, wc_probabilities, generator_cls):
        parallel = generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
            15, rng=3
        )
        serial = generator_cls(micro_graph, wc_probabilities).generate_batch(15, rng=3)
        for a, b in zip(parallel, serial):
            assert np.array_equal(a, b)

    def test_fixed_seed_jobs_bit_reproducible(
        self, micro_graph, wc_probabilities, generator_cls
    ):
        first = generator_cls(micro_graph, wc_probabilities)
        second = generator_cls(micro_graph, wc_probabilities)
        a = first.generate_batch_parallel(60, rng=11, n_jobs=3)
        b = second.generate_batch_parallel(60, rng=11, n_jobs=3)
        assert len(a) == len(b) == 60
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        assert first.edges_examined == second.edges_examined > 0

    def test_process_cap_does_not_change_results(
        self, micro_graph, wc_probabilities, generator_cls, monkeypatch
    ):
        uncapped = generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
            30, rng=5, n_jobs=4
        )
        monkeypatch.setenv(MAX_JOBS_ENV, "1")
        capped = generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
            30, rng=5, n_jobs=4
        )
        for a, b in zip(uncapped, capped):
            assert np.array_equal(a, b)

    def test_parallel_sets_are_valid_rr_sets(
        self, micro_graph, wc_probabilities, generator_cls
    ):
        rr_sets = generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
            50, rng=2, n_jobs=3
        )
        for rr_set in rr_sets:
            assert rr_set.size >= 1
            assert rr_set.min() >= 0 and rr_set.max() < micro_graph.num_nodes
            assert np.all(np.diff(rr_set) > 0)  # sorted, unique

    def test_negative_count_rejected(self, micro_graph, wc_probabilities, generator_cls):
        with pytest.raises(SamplingError):
            generator_cls(micro_graph, wc_probabilities).generate_batch_parallel(
                -1, rng=0, n_jobs=2
            )


def test_generation_shards_partition_count(micro_graph, wc_probabilities):
    shards = run_generation_shards(
        SubsimRRGenerator, micro_graph, wc_probabilities, 25, 7, ShardedExecutor(4)
    )
    assert len(shards) == 4
    assert sum(shard.sizes.size for shard in shards) == 25
    for shard in shards:
        assert shard.members.size == int(shard.sizes.sum())
        assert shard.cpu_seconds >= 0.0
        rebuilt = split_flat(shard.members, shard.sizes)
        assert len(rebuilt) == shard.sizes.size


# --------------------------------------------------------------------------- #
# shard-merge collection construction
# --------------------------------------------------------------------------- #
class TestCollectionFromShards:
    @staticmethod
    def _shard_triples(rr_sets, tags, parts):
        """Split (rr_sets, tags) into ``parts`` contiguous shard triples."""
        bounds = np.linspace(0, len(rr_sets), parts + 1).astype(int)
        triples = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            chunk = rr_sets[lo:hi]
            sizes = np.fromiter((s.size for s in chunk), np.int64, len(chunk))
            members = np.concatenate(chunk) if chunk else np.empty(0, np.int64)
            triples.append((members, sizes, np.asarray(tags[lo:hi], dtype=np.int64)))
        return triples

    @pytest.fixture(scope="class")
    def rr_sets_and_tags(self, micro_graph, wc_probabilities):
        rr_sets = SubsimRRGenerator(micro_graph, wc_probabilities).generate_batch(
            80, rng=13
        )
        tags = [index % 3 for index in range(80)]
        return rr_sets, tags

    def test_matches_add_built_collection(self, micro_graph, rr_sets_and_tags):
        rr_sets, tags = rr_sets_and_tags
        reference = RRCollection(micro_graph.num_nodes, 3)
        for rr_set, tag in zip(rr_sets, tags):
            reference.add(rr_set, tag)
        merged = RRCollection.from_shards(
            micro_graph.num_nodes, 3, self._shard_triples(rr_sets, tags, 4)
        )
        assert len(merged) == len(reference)
        assert merged.total_size == reference.total_size
        assert np.array_equal(merged.member_array, reference.member_array)
        assert np.array_equal(merged.set_offsets, reference.set_offsets)
        assert np.array_equal(merged.tag_array, reference.tag_array)
        assert np.array_equal(merged.membership_counts(), reference.membership_counts())
        for advertiser in range(3):
            for node in range(micro_graph.num_nodes):
                assert np.array_equal(
                    merged.sets_containing_array(advertiser, node),
                    reference.sets_containing_array(advertiser, node),
                )

    def test_list_api_still_works(self, micro_graph, rr_sets_and_tags):
        rr_sets, tags = rr_sets_and_tags
        merged = RRCollection.from_shards(
            micro_graph.num_nodes, 3, self._shard_triples(rr_sets, tags, 2)
        )
        assert np.array_equal(merged.rr_set(5), rr_sets[5])
        assert merged.tag(5) == tags[5]
        # add() after a shard build invalidates and rebuilds the CSR view.
        merged.add(rr_sets[0], 2)
        assert len(merged) == 81
        assert merged.tag_array[-1] == 2

    def test_extend_from_shards_appends(self, micro_graph, rr_sets_and_tags):
        rr_sets, tags = rr_sets_and_tags
        collection = RRCollection(micro_graph.num_nodes, 3)
        collection.add(rr_sets[0], 0)
        collection.extend_from_shards(self._shard_triples(rr_sets[1:], tags[1:], 3))
        assert len(collection) == 80
        reference = RRCollection(micro_graph.num_nodes, 3)
        reference.add(rr_sets[0], 0)
        for rr_set, tag in zip(rr_sets[1:], tags[1:]):
            reference.add(rr_set, tag)
        assert np.array_equal(collection.member_array, reference.member_array)
        assert np.array_equal(collection.tag_array, reference.tag_array)

    def test_validation_errors(self, micro_graph):
        n = micro_graph.num_nodes
        ok_members = np.array([0, 1, 2], dtype=np.int64)
        ok_sizes = np.array([3], dtype=np.int64)
        with pytest.raises(SamplingError):  # tag out of range
            RRCollection.from_shards(n, 2, [(ok_members, ok_sizes, np.array([2]))])
        with pytest.raises(SamplingError):  # node out of range
            RRCollection.from_shards(
                n, 2, [(np.array([0, n], dtype=np.int64), np.array([2]), np.array([0]))]
            )
        with pytest.raises(SamplingError):  # unsorted members
            RRCollection.from_shards(
                n, 2, [(np.array([2, 1], dtype=np.int64), np.array([2]), np.array([0]))]
            )
        with pytest.raises(SamplingError):  # empty RR-set
            RRCollection.from_shards(
                n, 2, [(np.empty(0, np.int64), np.array([0]), np.array([0]))]
            )
        with pytest.raises(SamplingError):  # sizes/members mismatch
            RRCollection.from_shards(n, 2, [(ok_members, np.array([2]), np.array([0]))])
        with pytest.raises(SamplingError):  # empty sizes but non-empty members
            RRCollection.from_shards(
                n, 2, [(ok_members, np.empty(0, np.int64), np.empty(0, np.int64))]
            )

    def test_empty_shards_allowed(self, micro_graph):
        empty = RRCollection.from_shards(micro_graph.num_nodes, 2, [])
        assert len(empty) == 0

    def test_single_shard_does_not_freeze_caller_arrays(self, micro_graph):
        """Regression: the CSR build freezes its arrays, but a caller's
        members/tags arrays must stay writable after a one-shard build."""
        members = np.array([0, 1, 2], dtype=np.int64)
        sizes = np.array([3], dtype=np.int64)
        tags = np.array([0], dtype=np.int64)
        collection = RRCollection.from_shards(micro_graph.num_nodes, 2, [(members, sizes, tags)])
        collection.membership_counts()
        members[0] = 5
        tags[0] = 1
        sizes[0] = 7
        assert collection.tag(0) == 0  # detached from the caller's buffers


# --------------------------------------------------------------------------- #
# uniform sampler sharding
# --------------------------------------------------------------------------- #
class TestUniformSamplerSharded:
    def _sampler(self, graph, probabilities, seed, n_jobs):
        # The seed policy keeps n_jobs=None meaning "serial" (the fast
        # default would resolve it to all cores); explicit n_jobs wins.
        return UniformRRSampler(
            graph,
            [probabilities, probabilities * 0.8],
            [1.0, 3.0],
            generator_cls=SubsimRRGenerator,
            seed=seed,
            n_jobs=n_jobs,
            policy=ExecutionPolicy.seed(),
        )

    def test_n_jobs_one_bit_identical_to_serial(self, micro_graph, wc_probabilities):
        serial = self._sampler(micro_graph, wc_probabilities, 5, None).generate_collection(30)
        one_job = self._sampler(micro_graph, wc_probabilities, 5, 1).generate_collection(30)
        assert np.array_equal(serial.member_array, one_job.member_array)
        assert np.array_equal(serial.tag_array, one_job.tag_array)

    def test_fixed_seed_jobs_bit_reproducible(self, micro_graph, wc_probabilities):
        first = self._sampler(micro_graph, wc_probabilities, 5, 3)
        second = self._sampler(micro_graph, wc_probabilities, 5, 3)
        a = first.generate_collection(45)
        b = second.generate_collection(45)
        assert np.array_equal(a.member_array, b.member_array)
        assert np.array_equal(a.set_offsets, b.set_offsets)
        assert np.array_equal(a.tag_array, b.tag_array)
        assert first.edges_examined() == second.edges_examined() > 0

    def test_incremental_growth_into_existing_collection(
        self, micro_graph, wc_probabilities
    ):
        sampler = self._sampler(micro_graph, wc_probabilities, 9, 2)
        collection = sampler.generate_collection(20)
        sampler.generate_collection(15, into=collection)
        assert len(collection) == 35
        assert collection.count_per_advertiser().sum() == 35
        # The grown collection still answers queries consistently.
        state_rows = collection.membership_counts()
        assert state_rows.shape == (2, micro_graph.num_nodes)

    def test_advertiser_distribution_follows_cpes(self, micro_graph, wc_probabilities):
        collection = self._sampler(micro_graph, wc_probabilities, 31, 4).generate_collection(
            400
        )
        counts = collection.count_per_advertiser()
        # cpe weights 1:3 — advertiser 1 should dominate clearly.
        assert counts.sum() == 400
        assert counts[1] > 2 * counts[0]


# --------------------------------------------------------------------------- #
# Monte-Carlo estimation: identity, reproducibility, KS / 3σ equivalence
# --------------------------------------------------------------------------- #
class TestParallelMonteCarlo:
    SEEDS = [0, 3, 7]

    def test_n_jobs_one_bit_identical_to_serial(self, micro_graph, wc_probabilities):
        serial = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 300, rng=9
        )
        one_job = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 300, rng=9, n_jobs=1
        )
        assert serial == one_job

    def test_fixed_seed_jobs_bit_reproducible(self, micro_graph, wc_probabilities):
        a = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 300, rng=9, n_jobs=3
        )
        b = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 300, rng=9, n_jobs=3
        )
        assert a == b

    def test_process_cap_does_not_change_results(
        self, micro_graph, wc_probabilities, monkeypatch
    ):
        uncapped = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 200, rng=4, n_jobs=4
        )
        monkeypatch.setenv(MAX_JOBS_ENV, "1")
        capped = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 200, rng=4, n_jobs=4
        )
        assert uncapped == capped

    def test_parallel_mean_within_three_sigma(self, micro_graph, wc_probabilities):
        count = 600
        serial = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, count, rng=21
        )
        parallel = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, count, rng=21, n_jobs=3
        )
        sizes = (
            simulate_cascades_batch(
                micro_graph, wc_probabilities, self.SEEDS, 400, rng=17
            )
            .sum(axis=1)
            .astype(np.float64)
        )
        sigma = float(sizes.std()) * np.sqrt(2.0 / count)
        assert abs(serial - parallel) <= 3.0 * sigma + 1e-9

    def test_parallel_estimates_ks_close_to_serial(self, micro_graph, wc_probabilities):
        """KS over repeated estimates: the parallel estimator's sampling
        distribution matches the serial batched engine's."""
        repeats, sims = 24, 50
        serial = np.array(
            [
                engine_monte_carlo_spread(
                    micro_graph, wc_probabilities, self.SEEDS, sims, rng=100 + r
                )
                for r in range(repeats)
            ]
        )
        parallel = np.array(
            [
                engine_monte_carlo_spread(
                    micro_graph, wc_probabilities, self.SEEDS, sims, rng=100 + r, n_jobs=2
                )
                for r in range(repeats)
            ]
        )
        statistic = _ks_statistic(serial, parallel)
        assert statistic <= _ks_threshold(repeats, repeats)

    def test_sharded_spread_helper_matches_n_jobs_path(
        self, micro_graph, wc_probabilities
    ):
        executor = ShardedExecutor(3)
        direct = sharded_spread(
            micro_graph,
            wc_probabilities,
            np.asarray(self.SEEDS, dtype=np.int64),
            300,
            9,
            executor,
        )
        via_engine = engine_monte_carlo_spread(
            micro_graph, wc_probabilities, self.SEEDS, 300, rng=9, n_jobs=3
        )
        assert direct == via_engine

    def test_empty_seed_set_is_zero(self, micro_graph, wc_probabilities):
        assert (
            engine_monte_carlo_spread(micro_graph, wc_probabilities, [], 50, rng=1, n_jobs=2)
            == 0.0
        )


class TestParallelSingletons:
    def test_n_jobs_one_bit_identical_to_serial(self, micro_graph, wc_probabilities):
        serial = engine_singleton_spreads(
            micro_graph, wc_probabilities, 40, rng=4, nodes=range(20)
        )
        one_job = engine_singleton_spreads(
            micro_graph, wc_probabilities, 40, rng=4, nodes=range(20), n_jobs=1
        )
        assert np.array_equal(serial, one_job)

    def test_fixed_seed_jobs_bit_reproducible(self, micro_graph, wc_probabilities):
        a = engine_singleton_spreads(
            micro_graph, wc_probabilities, 40, rng=4, nodes=range(25), n_jobs=3
        )
        b = engine_singleton_spreads(
            micro_graph, wc_probabilities, 40, rng=4, nodes=range(25), n_jobs=3
        )
        assert np.array_equal(a, b)
        assert a.size == 25

    def test_isolated_node_spread_is_exactly_one(self, wc_probabilities):
        graph = from_edge_list([(0, 1), (1, 2)], num_nodes=4)
        probabilities = np.zeros(graph.num_edges, dtype=np.float64)
        spreads = engine_singleton_spreads(
            graph, probabilities, 30, rng=0, nodes=[0, 3], n_jobs=2
        )
        assert np.array_equal(spreads, np.ones(2))

    def test_parallel_mean_within_three_sigma(self, micro_graph, wc_probabilities):
        nodes = list(range(30))
        sims = 200
        serial = engine_singleton_spreads(
            micro_graph, wc_probabilities, sims, rng=8, nodes=nodes
        )
        parallel = engine_singleton_spreads(
            micro_graph, wc_probabilities, sims, rng=8, nodes=nodes, n_jobs=3
        )
        # Mean singleton spread over the node panel: each estimate averages
        # len(nodes)·sims cascade sizes; bound the difference with the
        # per-cascade singleton-size variance.
        per_cascade = []
        for node in nodes[:10]:
            sizes = simulate_cascades_batch(
                micro_graph, wc_probabilities, [node], 50, rng=node
            ).sum(axis=1)
            per_cascade.append(sizes.astype(np.float64))
        sigma_one = float(np.concatenate(per_cascade).std())
        sigma_mean = sigma_one * np.sqrt(2.0 / (len(nodes) * sims))
        assert abs(float(serial.mean()) - float(parallel.mean())) <= 3.0 * sigma_mean + 1e-9


# --------------------------------------------------------------------------- #
# end-to-end: solver + parameters
# --------------------------------------------------------------------------- #
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.datasets.registry import build_dataset

        return build_dataset(
            "lastfm_like", num_advertisers=3, scale=0.15, seed=1, singleton_rr_sets=200
        )

    @staticmethod
    def _params(n_jobs):
        return SamplingParameters(
            initial_rr_sets=128,
            max_rr_sets=256,
            seed=1,
            policy=ExecutionPolicy(rr_engine="subsim", n_jobs=n_jobs),
        )

    def test_n_jobs_validation(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy(n_jobs=0)
        with pytest.raises(PolicyError):
            ExecutionPolicy(n_jobs=-3)
        SamplingParameters(policy=ExecutionPolicy(n_jobs=-1)).validate()
        from repro.baselines.ti_common import TIParameters

        TIParameters(policy=ExecutionPolicy(n_jobs=4)).validate()

    def test_rma_n_jobs_one_matches_serial(self, dataset):
        serial = rm_without_oracle(dataset.instance, self._params(None))
        one_job = rm_without_oracle(dataset.instance, self._params(1))
        assert serial.revenue == one_job.revenue
        assert all(
            serial.allocation.seeds(i) == one_job.allocation.seeds(i) for i in range(3)
        )

    def test_rma_sharded_bit_reproducible(self, dataset):
        first = rm_without_oracle(dataset.instance, self._params(2))
        second = rm_without_oracle(dataset.instance, self._params(2))
        assert first.revenue == second.revenue
        assert all(
            first.allocation.seeds(i) == second.allocation.seeds(i) for i in range(3)
        )
        assert first.metadata["rr_sets"] == second.metadata["rr_sets"]

    def test_run_algorithm_fast_policy(self, dataset):
        from repro.experiments.runner import run_algorithm

        params = SamplingParameters(initial_rr_sets=128, max_rr_sets=256, seed=1)
        run = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=params,
            policy=ExecutionPolicy.fast(n_jobs=2),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert run.evaluation.revenue > 0
        # an explicit policy copies the caller's parameters instead of mutating them
        assert params.policy is None

    def test_run_algorithm_pinned_jobs(self, dataset):
        from repro.experiments.runner import run_algorithm

        run = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=SamplingParameters(
                initial_rr_sets=128,
                max_rr_sets=256,
                seed=1,
                policy=ExecutionPolicy(rr_engine="subsim", n_jobs=2),
            ),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert run.evaluation.revenue > 0

    def test_monte_carlo_oracle_sharded_deterministic(self, dataset):
        from repro.advertising.oracle import MonteCarloOracle

        sims = MonteCarloOracle.MIN_SHARDED_SIMULATIONS  # large enough to shard
        sharded = ExecutionPolicy.seed(n_jobs=2).evolve(mc_engine="batched")
        first = MonteCarloOracle(
            dataset.instance, num_simulations=sims, seed=5, policy=sharded
        )
        second = MonteCarloOracle(
            dataset.instance, num_simulations=sims, seed=5, policy=sharded
        )
        assert first.revenue(0, [0, 1]) == second.revenue(0, [0, 1])

    def test_monte_carlo_oracle_small_queries_stay_serial(self, dataset):
        """Below MIN_SHARDED_SIMULATIONS the pool-spawn overhead dominates,
        so n_jobs is ignored and small queries match the serial oracle
        bit for bit."""
        from repro.advertising.oracle import MonteCarloOracle

        sharded = MonteCarloOracle(
            dataset.instance,
            num_simulations=60,
            seed=5,
            policy=ExecutionPolicy.fast(n_jobs=4),
        )
        serial = MonteCarloOracle(
            dataset.instance, num_simulations=60, seed=5, policy=ExecutionPolicy.fast(n_jobs=1)
        )
        assert sharded.revenue(0, [0, 1]) == serial.revenue(0, [0, 1])

    def test_monte_carlo_oracle_rejects_bad_n_jobs_eagerly(self, dataset):
        from repro.advertising.oracle import MonteCarloOracle

        with pytest.raises(PolicyError):
            MonteCarloOracle(dataset.instance, policy=ExecutionPolicy(n_jobs=0))
        with pytest.raises(PolicyError):
            MonteCarloOracle(dataset.instance, policy=ExecutionPolicy(n_jobs=-4))

    def test_ti_baseline_sharded_reproducible(self, dataset):
        from repro.baselines.ti_common import TIParameters
        from repro.baselines.ti_carm import ti_carm

        params = dict(
            pilot_size=32,
            max_rr_sets_per_advertiser=128,
            seed=2,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        first = ti_carm(dataset.instance, TIParameters(**params))
        second = ti_carm(dataset.instance, TIParameters(**params))
        assert first.revenue == second.revenue
        assert all(
            first.allocation.seeds(i) == second.allocation.seeds(i) for i in range(3)
        )
