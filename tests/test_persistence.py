"""Tests for experiment-result persistence."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.persistence import (
    load_rows_csv,
    load_rows_json,
    merge_result_files,
    save_rows_csv,
    save_rows_json,
)

SAMPLE_ROWS = [
    {"algorithm": "RMA", "alpha": 0.1, "revenue": 123.4, "feasible": True},
    {"algorithm": "TI-CSRM", "alpha": 0.1, "revenue": 98.7, "feasible": False},
]


class TestJsonRoundtrip:
    def test_rows_roundtrip(self, tmp_path):
        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path, metadata={"dataset": "lastfm_like"})
        rows, metadata = load_rows_json(path)
        assert rows == SAMPLE_ROWS
        assert metadata == {"dataset": "lastfm_like"}

    def test_default_metadata_empty(self, tmp_path):
        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path)
        _, metadata = load_rows_json(path)
        assert metadata == {}

    def test_invalid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ExperimentError):
            load_rows_json(path)

    def test_merge_result_files(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_rows_json(SAMPLE_ROWS[:1], first)
        save_rows_json(SAMPLE_ROWS[1:], second)
        merged = merge_result_files([first, second])
        assert merged == SAMPLE_ROWS


class TestCsvRoundtrip:
    def test_rows_roundtrip_with_coercion(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv(SAMPLE_ROWS, path)
        rows = load_rows_csv(path)
        assert rows[0]["algorithm"] == "RMA"
        assert rows[0]["alpha"] == pytest.approx(0.1)
        assert rows[0]["revenue"] == pytest.approx(123.4)
        assert rows[0]["feasible"] is True
        assert rows[1]["feasible"] is False

    def test_union_of_columns(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv([{"a": 1}, {"b": 2}], path)
        rows = load_rows_csv(path)
        assert rows[0]["a"] == 1 and rows[0]["b"] == ""
        assert rows[1]["b"] == 2

    def test_integer_values_stay_integers(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv([{"seeds": 17}], path)
        assert load_rows_csv(path)[0]["seeds"] == 17

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            save_rows_csv([], tmp_path / "empty.csv")

    def test_saves_benchmark_style_rows(self, tmp_path):
        """Rows produced by the figure sweeps persist and reload cleanly."""
        from repro.experiments.figures import table2_budgets

        rows = table2_budgets(datasets=("lastfm_like",), num_advertisers=3, scale=0.05, seed=1)
        path = tmp_path / "table2.csv"
        save_rows_csv(rows, path)
        loaded = load_rows_csv(path)
        assert loaded[0]["dataset"] == "lastfm_like"
        assert loaded[0]["budget_mean"] == pytest.approx(rows[0]["budget_mean"])


class TestAtomicWrites:
    """Torn-write safety: a crash mid-save never destroys the previous file."""

    def test_atomic_write_replaces_or_preserves(self, tmp_path, monkeypatch):
        import os as os_module

        from repro.utils import atomic

        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path)
        before = path.read_bytes()

        # Simulated crash at the very last step: the rename itself fails.
        def exploding_replace(src, dst):
            raise OSError("simulated crash during replace")

        monkeypatch.setattr(atomic.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_rows_json([{"algorithm": "X", "revenue": 1.0}], path)
        monkeypatch.undo()

        # The interrupted write never touched the destination...
        assert path.read_bytes() == before
        assert load_rows_json(path) == (SAMPLE_ROWS, {})
        # ...and its tmp file was cleaned up.
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_failed_serialization_never_truncates(self, tmp_path):
        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path)
        circular = {}
        circular["self"] = circular
        with pytest.raises(ValueError):
            # A non-serialisable row fails during json.dumps, before any
            # file is opened: the destination must be untouched.
            save_rows_json([circular], path)
        assert load_rows_json(path) == (SAMPLE_ROWS, {})

    def test_no_tmp_residue_on_success(self, tmp_path):
        from repro.utils.atomic import atomic_write_bytes, atomic_write_text

        atomic_write_bytes(tmp_path / "a.bin", b"\x00\x01")
        atomic_write_text(tmp_path / "b.txt", "hello")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["a.bin", "b.txt"]
        assert (tmp_path / "a.bin").read_bytes() == b"\x00\x01"
        assert (tmp_path / "b.txt").read_text() == "hello"

    def test_write_into_missing_directory_raises_cleanly(self, tmp_path):
        from repro.utils.atomic import atomic_write_text

        with pytest.raises(FileNotFoundError):
            atomic_write_text(tmp_path / "nope" / "x.txt", "data")
