"""Tests for experiment-result persistence."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.persistence import (
    load_rows_csv,
    load_rows_json,
    merge_result_files,
    save_rows_csv,
    save_rows_json,
)

SAMPLE_ROWS = [
    {"algorithm": "RMA", "alpha": 0.1, "revenue": 123.4, "feasible": True},
    {"algorithm": "TI-CSRM", "alpha": 0.1, "revenue": 98.7, "feasible": False},
]


class TestJsonRoundtrip:
    def test_rows_roundtrip(self, tmp_path):
        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path, metadata={"dataset": "lastfm_like"})
        rows, metadata = load_rows_json(path)
        assert rows == SAMPLE_ROWS
        assert metadata == {"dataset": "lastfm_like"}

    def test_default_metadata_empty(self, tmp_path):
        path = tmp_path / "results.json"
        save_rows_json(SAMPLE_ROWS, path)
        _, metadata = load_rows_json(path)
        assert metadata == {}

    def test_invalid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ExperimentError):
            load_rows_json(path)

    def test_merge_result_files(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_rows_json(SAMPLE_ROWS[:1], first)
        save_rows_json(SAMPLE_ROWS[1:], second)
        merged = merge_result_files([first, second])
        assert merged == SAMPLE_ROWS


class TestCsvRoundtrip:
    def test_rows_roundtrip_with_coercion(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv(SAMPLE_ROWS, path)
        rows = load_rows_csv(path)
        assert rows[0]["algorithm"] == "RMA"
        assert rows[0]["alpha"] == pytest.approx(0.1)
        assert rows[0]["revenue"] == pytest.approx(123.4)
        assert rows[0]["feasible"] is True
        assert rows[1]["feasible"] is False

    def test_union_of_columns(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv([{"a": 1}, {"b": 2}], path)
        rows = load_rows_csv(path)
        assert rows[0]["a"] == 1 and rows[0]["b"] == ""
        assert rows[1]["b"] == 2

    def test_integer_values_stay_integers(self, tmp_path):
        path = tmp_path / "results.csv"
        save_rows_csv([{"seeds": 17}], path)
        assert load_rows_csv(path)[0]["seeds"] == 17

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            save_rows_csv([], tmp_path / "empty.csv")

    def test_saves_benchmark_style_rows(self, tmp_path):
        """Rows produced by the figure sweeps persist and reload cleanly."""
        from repro.experiments.figures import table2_budgets

        rows = table2_budgets(datasets=("lastfm_like",), num_advertisers=3, scale=0.05, seed=1)
        path = tmp_path / "table2.csv"
        save_rows_csv(rows, path)
        loaded = load_rows_csv(path)
        assert loaded[0]["dataset"] == "lastfm_like"
        assert loaded[0]["budget_mean"] == pytest.approx(rows[0]["budget_mean"])
