"""Post-flip equivalence suite (the default-policy bugfix contract).

Two guarantees pin the flip of the default from the serial seed path to
:meth:`ExecutionPolicy.fast`:

1. **The escape hatch is intact** — ``ExecutionPolicy.seed()`` reproduces the
   pre-flip no-args defaults bit-for-bit.  The expected revenues and
   allocations were recorded in ``tests/data/preflip_golden.json`` by running
   the exact recipes below on the commit *before* the flip, when a
   parameter object with no policy meant the legacy serial engines.
2. **The shims are gone** — every call site that used to accept the legacy
   per-flag kwargs (``use_subsim`` / ``use_batched_mc`` /
   ``use_batched_greedy`` / loose ``n_jobs`` / ``fast``) now raises
   ``TypeError``, so old code fails loudly instead of silently running on
   different engines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.advertising.oracle import MonteCarloOracle, RRSetOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ti_common import TIParameters
from repro.core.greedy import greedy_single_advertiser
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import (
    SamplingParameters,
    one_batch_rm,
    rm_without_oracle,
)
from repro.core.threshold_greedy import fill, threshold_greedy
from repro.datasets.registry import build_dataset
from repro.experiments.runner import run_algorithm
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import ExecutionPolicy

GOLDEN_PATH = Path(__file__).parent / "data" / "preflip_golden.json"
SEED = ExecutionPolicy.seed()


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        "lastfm_like", num_advertisers=3, scale=0.15, seed=1, singleton_rr_sets=200
    )


@pytest.fixture(scope="module")
def rr_oracle(dataset):
    # Same recipe the golden file was recorded with; the sampler must be
    # pinned to the seed policy now that its default is SUBSIM.
    instance = dataset.instance
    sampler = UniformRRSampler(
        instance.graph,
        instance.all_edge_probabilities(),
        instance.cpes(),
        seed=7,
        policy=SEED,
    )
    return RRSetOracle(sampler.generate_collection(800), instance.gamma)


def _fingerprint(result):
    return {
        "revenue": result.revenue,
        "allocation": {
            str(a): sorted(int(n) for n in s) for a, s in result.allocation.items()
        },
    }


def _sampling():
    return SamplingParameters(initial_rr_sets=128, max_rr_sets=256, seed=1, policy=SEED)


def _ti():
    return TIParameters(pilot_size=32, max_rr_sets_per_advertiser=128, seed=2, policy=SEED)


# --------------------------------------------------------------------------- #
# seed() reproduces the pre-flip no-args defaults bit-for-bit
# --------------------------------------------------------------------------- #
class TestSeedPolicyMatchesPreflipGolden:
    def test_rma(self, dataset, golden):
        result = rm_without_oracle(dataset.instance, _sampling())
        assert _fingerprint(result) == golden["RMA"]

    def test_one_batch(self, dataset, golden):
        result = one_batch_rm(dataset.instance, 256, _sampling())
        assert _fingerprint(result) == golden["OneBatchRM"]

    def test_ti_carm(self, dataset, golden):
        assert _fingerprint(ti_carm(dataset.instance, _ti())) == golden["TI-CARM"]

    def test_ti_csrm(self, dataset, golden):
        assert _fingerprint(ti_csrm(dataset.instance, _ti())) == golden["TI-CSRM"]

    def test_cs_greedy(self, dataset, golden, rr_oracle):
        result = cs_greedy(dataset.instance, rr_oracle, policy=SEED)
        assert _fingerprint(result) == golden["CS-Greedy"]

    def test_ca_greedy(self, dataset, golden, rr_oracle):
        result = ca_greedy(dataset.instance, rr_oracle, policy=SEED)
        assert _fingerprint(result) == golden["CA-Greedy"]

    def test_greedy_engines_agree_on_golden_allocations(self, dataset, golden, rr_oracle):
        """The batched greedy engine is bit-identical, so even the fast
        policy reproduces the golden *allocations* when the oracle's RR-set
        collection is pinned to the seed sampler."""
        fast = ExecutionPolicy.fast()
        assert _fingerprint(cs_greedy(dataset.instance, rr_oracle, policy=fast)) == golden[
            "CS-Greedy"
        ]
        assert _fingerprint(ca_greedy(dataset.instance, rr_oracle, policy=fast)) == golden[
            "CA-Greedy"
        ]


# --------------------------------------------------------------------------- #
# every former shim site fails loudly
# --------------------------------------------------------------------------- #
class TestLegacyKwargsRaiseTypeError:
    def test_sampling_parameters(self):
        for kwargs in (
            {"use_subsim": True},
            {"use_batched_mc": True},
            {"use_batched_greedy": True},
            {"n_jobs": 2},
            {"fast": True},
        ):
            with pytest.raises(TypeError):
                SamplingParameters(**kwargs)

    def test_ti_parameters(self):
        for kwargs in (
            {"use_subsim": True},
            {"use_batched_greedy": True},
            {"n_jobs": 2},
        ):
            with pytest.raises(TypeError):
                TIParameters(**kwargs)

    def test_monte_carlo_oracle(self, dataset):
        with pytest.raises(TypeError):
            MonteCarloOracle(dataset.instance, use_batched_mc=True)
        with pytest.raises(TypeError):
            MonteCarloOracle(dataset.instance, n_jobs=2)

    def test_oracle_solver(self, dataset, rr_oracle):
        with pytest.raises(TypeError):
            rm_with_oracle(dataset.instance, rr_oracle, use_batched_greedy=True)

    def test_greedy_family(self, dataset, rr_oracle):
        instance = dataset.instance
        with pytest.raises(TypeError):
            greedy_single_advertiser(
                instance, rr_oracle, 0, instance.budget(0), use_batched_greedy=True
            )
        with pytest.raises(TypeError):
            threshold_greedy(instance, rr_oracle, 1.0, use_batched_greedy=True)
        with pytest.raises(TypeError):
            fill(instance, rr_oracle, object(), use_batched_greedy=True)

    def test_baselines(self, dataset, rr_oracle):
        with pytest.raises(TypeError):
            cs_greedy(dataset.instance, rr_oracle, use_batched_greedy=True)
        with pytest.raises(TypeError):
            ca_greedy(dataset.instance, rr_oracle, use_batched_greedy=True)

    def test_uniform_sampler(self, dataset):
        instance = dataset.instance
        with pytest.raises(TypeError):
            UniformRRSampler(
                instance.graph,
                instance.all_edge_probabilities(),
                instance.cpes(),
                use_subsim=True,
            )

    def test_run_algorithm(self, dataset):
        for kwargs in (
            {"fast": True},
            {"n_jobs": 2},
            {"use_subsim": True},
            {"use_batched_mc": True},
            {"use_batched_greedy": True},
        ):
            with pytest.raises(TypeError):
                run_algorithm("RMA", dataset.instance, **kwargs)
