"""Property-based tests (hypothesis) for the library's core invariants.

These cover the mathematical properties the paper's analysis rests on:
monotonicity and submodularity of the estimated revenue function, budget
feasibility and disjointness of every solver output, and unbiasedness-style
consistency of the RR-set estimators.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advertising.advertiser import Advertiser
from repro.advertising.allocation import Allocation
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.core.greedy import marginal_rate
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.diffusion.engine import simulate_cascades_batch
from repro.diffusion.models import IndependentCascadeModel
from repro.diffusion.simulation import (
    exact_spread,
    reachable_from,
    simulate_cascade,
)
from repro.exceptions import ProblemDefinitionError
from repro.graph.builders import from_edge_list
from repro.incentives.models import (
    LinearIncentiveModel,
    QuasiLinearIncentiveModel,
    SuperLinearIncentiveModel,
)
from repro.rrsets.uniform import UniformRRSampler

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
edge_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=20,
)

# Small enough that 2^edges possible-world enumeration stays cheap.
tiny_edge_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=8,
)


def _build_instance(edges, probability, num_advertisers, budget, seed):
    graph = from_edge_list(edges, num_nodes=8)
    model = IndependentCascadeModel(graph, probability=probability)
    advertisers = [
        Advertiser(budget=budget, cpe=1.0 + 0.5 * index) for index in range(num_advertisers)
    ]
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.5, 2.0, size=(num_advertisers, 8))
    return RMInstance(graph, model, advertisers, costs)


def _rr_oracle(instance, count, seed):
    sampler = UniformRRSampler(
        instance.graph, instance.all_edge_probabilities(), instance.cpes(), seed=seed
    )
    return RRSetOracle(sampler.generate_collection(count), instance.gamma)


# --------------------------------------------------------------------------- #
# revenue-function properties
# --------------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    probability=st.floats(0.05, 0.95),
    seed=st.integers(0, 1000),
    base=st.sets(st.integers(0, 7), max_size=3),
    extra=st.sets(st.integers(0, 7), min_size=1, max_size=3),
    node=st.integers(0, 7),
)
def test_estimated_revenue_is_monotone_and_submodular(edges, probability, seed, base, extra, node):
    """π̃_i(·, R) must be monotone and have diminishing marginal returns."""
    instance = _build_instance(edges, probability, 2, budget=20.0, seed=seed)
    oracle = _rr_oracle(instance, 200, seed)
    small = frozenset(base)
    large = frozenset(base | extra)
    # Monotone.
    assert oracle.revenue(0, large) >= oracle.revenue(0, small) - 1e-9
    # Submodular: marginal gain of `node` shrinks as the set grows.
    gain_small = oracle.marginal_revenue(0, node, small - {node})
    gain_large = oracle.marginal_revenue(0, node, large - {node})
    assert gain_large <= gain_small + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    gain=st.floats(0.0, 1e6),
    cost=st.floats(1e-3, 1e6),
)
def test_marginal_rate_bounded_in_unit_interval(gain, cost):
    rate = marginal_rate(gain, cost)
    assert 0.0 <= rate < 1.0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    probability=st.floats(0.1, 0.9),
    seed=st.integers(0, 500),
    num_advertisers=st.integers(1, 3),
    budget=st.floats(3.0, 15.0),
)
def test_oracle_solver_output_is_feasible_partition(edges, probability, seed, num_advertisers, budget):
    """RM_with_Oracle output: disjoint seed sets, budget-feasible multi-node sets."""
    instance = _build_instance(edges, probability, num_advertisers, budget, seed)
    oracle = _rr_oracle(instance, 150, seed)
    result = rm_with_oracle(instance, oracle, tau=0.2)
    seen = set()
    for advertiser, seeds in result.allocation.items():
        assert not (seen & seeds)
        seen |= seeds
        if len(seeds) > 1:
            spend = instance.cost_of_set(advertiser, seeds) + oracle.revenue(advertiser, seeds)
            assert spend <= instance.budget(advertiser) + 1e-6


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    probability=st.floats(0.1, 0.9),
    seed=st.integers(0, 200),
    rho=st.floats(0.1, 0.8),
)
def test_rma_respects_relaxed_budget_in_sampling_space(edges, probability, seed, rho):
    """RMA's own estimate of each advertiser's payment stays within (1+ϱ)·B_i."""
    instance = _build_instance(edges, probability, 2, budget=12.0, seed=seed)
    params = SamplingParameters(
        initial_rr_sets=128, max_rr_sets=256, rho=rho, seed=seed, epsilon=0.2
    )
    result = rm_without_oracle(instance, params)
    for advertiser, seeds in result.allocation.items():
        estimated = result.per_advertiser_revenue.get(advertiser, 0.0)
        payment = instance.cost_of_set(advertiser, seeds) + estimated
        assert payment <= (1.0 + rho / 2.0) * instance.budget(advertiser) + 1e-6


# --------------------------------------------------------------------------- #
# cascade invariants (sequential and batched engines)
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    probability=st.floats(0.0, 1.0),
    seed=st.integers(0, 1000),
    seeds=st.sets(st.integers(0, 7), min_size=1, max_size=4),
)
def test_cascade_activation_sandwich_both_engines(edges, probability, seed, seeds):
    """seeds ⊆ activated ⊆ reachable_from(seeds) for every cascade of either engine."""
    graph = from_edge_list(edges, num_nodes=8)
    probabilities = np.full(graph.num_edges, probability)
    seed_list = sorted(seeds)
    reachable = reachable_from(graph, seed_list, np.ones(graph.num_edges, dtype=bool))

    activated = simulate_cascade(graph, probabilities, seed_list, rng=seed)
    assert set(seed_list) <= activated <= reachable

    bitmap = simulate_cascades_batch(
        graph, probabilities, seed_list, num_cascades=5, rng=seed
    )
    reachable_mask = np.zeros(graph.num_nodes, dtype=bool)
    reachable_mask[list(reachable)] = True
    assert bitmap[:, seed_list].all()
    assert not bitmap[:, ~reachable_mask].any()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    seed=st.integers(0, 1000),
    seeds=st.sets(st.integers(0, 7), min_size=1, max_size=4),
)
def test_cascade_degenerate_probabilities_both_engines(edges, seed, seeds):
    """p = 0 activates exactly the seeds; p = 1 activates exactly the closure."""
    graph = from_edge_list(edges, num_nodes=8)
    seed_list = sorted(seeds)
    zeros = np.zeros(graph.num_edges)
    ones = np.ones(graph.num_edges)

    assert simulate_cascade(graph, zeros, seed_list, rng=seed) == set(seed_list)
    closure = reachable_from(graph, seed_list, np.ones(graph.num_edges, dtype=bool))
    assert simulate_cascade(graph, ones, seed_list, rng=seed) == closure

    frozen = simulate_cascades_batch(graph, zeros, seed_list, num_cascades=4, rng=seed)
    assert frozen.sum() == 4 * len(seed_list)
    assert frozen[:, seed_list].all()
    saturated = simulate_cascades_batch(graph, ones, seed_list, num_cascades=4, rng=seed)
    closure_mask = np.zeros(graph.num_nodes, dtype=bool)
    closure_mask[list(closure)] = True
    assert np.array_equal(saturated, np.tile(closure_mask, (4, 1)))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=tiny_edge_strategy,
    probability=st.floats(0.05, 0.95),
    base=st.sets(st.integers(0, 7), min_size=1, max_size=3),
    extra=st.sets(st.integers(0, 7), min_size=1, max_size=2),
)
def test_exact_spread_monotone_in_seed_set(edges, probability, base, extra):
    """σ(S) ≤ σ(S ∪ T): expected spread is monotone (checked exactly)."""
    graph = from_edge_list(edges, num_nodes=8)
    probabilities = np.full(graph.num_edges, probability)
    small = exact_spread(graph, probabilities, sorted(base), max_edges=8)
    large = exact_spread(graph, probabilities, sorted(base | extra), max_edges=8)
    assert large >= small - 1e-9


# --------------------------------------------------------------------------- #
# allocation and incentive properties
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    assignments=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 4)), max_size=40
    )
)
def test_allocation_partition_invariant(assignments):
    """However nodes are assigned, each node has at most one owner."""
    allocation = Allocation(5)
    owners = {}
    for node, advertiser in assignments:
        if node in owners and owners[node] != advertiser:
            with pytest.raises(ProblemDefinitionError):
                allocation.assign(node, advertiser)
        else:
            allocation.assign(node, advertiser)
            owners[node] = advertiser
    assert allocation.total_seed_count() == len(owners)
    for node, advertiser in owners.items():
        assert allocation.owner_of(node) == advertiser


@settings(max_examples=40, deadline=None)
@given(
    spreads=st.lists(st.floats(1.0, 500.0), min_size=1, max_size=30),
    alpha=st.floats(0.01, 2.0),
)
def test_incentive_models_ordering(spreads, alpha):
    """Costs are positive, monotone in alpha, and superlinear >= linear >= 0."""
    spreads = np.asarray(spreads)
    linear = LinearIncentiveModel(alpha=alpha).costs(spreads)
    quasi = QuasiLinearIncentiveModel(alpha=alpha).costs(spreads)
    superlinear = SuperLinearIncentiveModel(alpha=alpha).costs(spreads)
    assert (linear > 0).all() and (quasi > 0).all() and (superlinear > 0).all()
    assert (superlinear >= linear - 1e-9).all()
    # Quasilinear sits between linear and superlinear for spreads >= e.
    mask = spreads >= np.e
    assert (quasi[mask] >= linear[mask] - 1e-9).all()
    assert (quasi[mask] <= superlinear[mask] + 1e-9).all()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=edge_strategy,
    probability=st.floats(0.1, 0.9),
    seed=st.integers(0, 300),
    seeds_a=st.sets(st.integers(0, 7), max_size=4),
    seeds_b=st.sets(st.integers(0, 7), max_size=4),
)
def test_rr_estimates_are_additive_across_advertisers(edges, probability, seed, seeds_a, seeds_b):
    """Total revenue estimate equals the sum of per-advertiser estimates."""
    instance = _build_instance(edges, probability, 2, budget=10.0, seed=seed)
    oracle = _rr_oracle(instance, 150, seed)
    allocation = {0: seeds_a, 1: seeds_b - seeds_a}
    total = oracle.total_revenue(allocation)
    parts = oracle.revenue(0, allocation[0]) + oracle.revenue(1, allocation[1])
    assert total == pytest.approx(parts)
