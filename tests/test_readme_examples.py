"""The README's Python code blocks must actually execute.

Every fenced ``python`` block in ``README.md`` is extracted and executed in
a fresh namespace (bash blocks are checked for the documented commands
instead).  Docs that rot into broken snippets fail CI, not users.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"
_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def _blocks(language: str) -> list[str]:
    return [
        body for lang, body in _FENCE.findall(README.read_text()) if lang == language
    ]


def test_readme_exists_and_has_code_blocks():
    assert README.exists()
    assert len(_blocks("python")) >= 2
    assert len(_blocks("bash")) >= 2


@pytest.mark.parametrize(
    "index", range(len(_blocks("python"))), ids=lambda i: f"python-block-{i}"
)
def test_readme_python_blocks_execute(index):
    code = _blocks("python")[index]
    namespace: dict = {"__name__": "__readme__"}
    exec(compile(code, f"README.md[python #{index}]", "exec"), namespace)


def test_readme_documents_the_commands_ci_runs():
    bash = "\n".join(_blocks("bash"))
    assert "python -m pytest -x -q" in bash
    assert "benchmarks/bench_rr_engine.py" in bash
    assert "benchmarks/bench_mc_engine.py" in bash
    assert "benchmarks/bench_greedy_engine.py" in bash


def test_readme_documents_the_policy_api():
    text = README.read_text()
    assert "ExecutionPolicy" in text
    # fast is the default; seed is the documented escape hatch
    assert "ExecutionPolicy.seed()" in text
    assert "--policy seed" in text
    # the retired per-flag API may appear in the migration table, but no
    # runnable example may still use it
    python = "\n".join(_blocks("python"))
    for flag in ("use_subsim", "use_batched_mc", "use_batched_greedy"):
        assert flag not in python, f"README code still uses the removed {flag} flag"
