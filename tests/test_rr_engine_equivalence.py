"""Legacy-vs-vectorized equivalence proofs for the CSR RR-set engine.

The vectorized engine (:mod:`repro.rrsets.generator`, `.collection`) claims
bit-identical behaviour with the seed implementation preserved in
:mod:`repro.rrsets.legacy` when driven from the same RNG seed.  These tests
pin that claim across propagation models (IC / WC / Trivalency), both
generators, the tagged collection, the coverage state and the RR-set oracle.
"""

import numpy as np
import pytest

from repro.advertising.oracle import RRSetOracle
from repro.diffusion.models import (
    IndependentCascadeModel,
    TrivalencyModel,
    WeightedCascadeModel,
)
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.collection import CoverageState, RRCollection
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.rrsets.legacy import (
    LegacyCoverageState,
    LegacyRRCollection,
    LegacyRRSetGenerator,
    LegacySubsimRRGenerator,
)

MODELS = [IndependentCascadeModel, WeightedCascadeModel, TrivalencyModel]
GENERATOR_PAIRS = [
    (RRSetGenerator, LegacyRRSetGenerator),
    (SubsimRRGenerator, LegacySubsimRRGenerator),
]


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_digraph(250, out_degree=4, seed=1)


def _probabilities(model_cls, graph):
    return np.asarray(model_cls(graph).edge_probabilities(), dtype=np.float64)


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
@pytest.mark.parametrize(
    "generator_cls,legacy_cls", GENERATOR_PAIRS, ids=["standard", "subsim"]
)
@pytest.mark.parametrize("seed", [7, 11, 42])
def test_rr_sets_bit_identical(graph, model_cls, generator_cls, legacy_cls, seed):
    """Same seed ⇒ identical RR-set membership, set by set."""
    probabilities = _probabilities(model_cls, graph)
    vectorized = generator_cls(graph, probabilities).generate_many(300, rng=seed)
    legacy = legacy_cls(graph, probabilities).generate_many(300, rng=seed)
    assert len(vectorized) == len(legacy)
    for new_set, old_set in zip(vectorized, legacy):
        assert np.array_equal(new_set, np.sort(old_set))


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda m: m.__name__)
def test_standard_edges_examined_matches_legacy(graph, model_cls):
    """The standard generator's cost counter is unchanged by vectorization."""
    probabilities = _probabilities(model_cls, graph)
    vectorized = RRSetGenerator(graph, probabilities)
    legacy = LegacyRRSetGenerator(graph, probabilities)
    vectorized.generate_many(200, rng=5)
    legacy.generate_many(200, rng=5)
    assert vectorized.edges_examined == legacy.edges_examined


def _paired_collections(graph, seed=3, count=400, num_advertisers=3):
    probabilities = _probabilities(WeightedCascadeModel, graph)
    rr_sets = RRSetGenerator(graph, probabilities).generate_many(count, rng=seed)
    tags = np.random.default_rng(seed).integers(0, num_advertisers, size=count)
    new = RRCollection(graph.num_nodes, num_advertisers)
    old = LegacyRRCollection(graph.num_nodes, num_advertisers)
    for rr_set, tag in zip(rr_sets, tags):
        new.add(rr_set, int(tag))
        old.add(rr_set, int(tag))
    return new, old


def test_collection_inverted_index_matches_legacy(graph):
    new, old = _paired_collections(graph)
    assert new.count_per_advertiser().tolist() == old.count_per_advertiser().tolist()
    assert new.tags().tolist() == old.tags().tolist()
    for advertiser in range(new.num_advertisers):
        for node in range(graph.num_nodes):
            assert new.sets_containing(advertiser, node) == old.sets_containing(
                advertiser, node
            )


def test_collection_out_of_range_queries_return_empty(graph):
    """Legacy parity: unknown (advertiser, node) keys answer empty, not garbage."""
    new, old = _paired_collections(graph)
    for advertiser, node in [(0, -1), (0, graph.num_nodes), (new.num_advertisers, 0)]:
        assert new.sets_containing(advertiser, node) == []
        assert old.sets_containing(advertiser, node) == []
    assert new.coverage_count(0, [-1, graph.num_nodes]) == 0


def test_add_copies_presorted_input(graph):
    """The sorted fast path must not alias the caller's buffer."""
    collection = RRCollection(graph.num_nodes, 1)
    buffer = np.array([0, 1], dtype=np.int64)
    collection.add(buffer, 0)
    buffer[1] = 99
    assert collection.rr_set(0).tolist() == [0, 1]
    assert collection.sets_containing(0, 1) == [0]


def test_collection_index_rebuilds_after_append(graph):
    """The lazy CSR must invalidate when the collection grows."""
    new, old = _paired_collections(graph, count=150)
    # Query once to force the CSR build, then grow both collections.
    assert new.sets_containing(0, 0) == old.sets_containing(0, 0)
    probabilities = _probabilities(WeightedCascadeModel, graph)
    extra = RRSetGenerator(graph, probabilities).generate_many(80, rng=99)
    for rr_set in extra:
        new.add(rr_set, 1)
        old.add(rr_set, 1)
    for node in range(0, graph.num_nodes, 5):
        assert new.sets_containing(1, node) == old.sets_containing(1, node)


def test_coverage_state_marginals_match_legacy(graph):
    new, old = _paired_collections(graph)
    new_state, old_state = CoverageState(new), LegacyCoverageState(old)
    rng = np.random.default_rng(17)
    for step, node in enumerate(rng.permutation(graph.num_nodes)[:80].tolist()):
        advertiser = step % new.num_advertisers
        assert new_state.add_seed(advertiser, node) == old_state.add_seed(
            advertiser, node
        )
    assert new_state.covered_count == old_state.covered_count
    for advertiser in range(new.num_advertisers):
        assert new_state.covered_count_for(advertiser) == old_state.covered_count_for(
            advertiser
        )
        for node in range(graph.num_nodes):
            assert new_state.marginal_coverage(
                advertiser, node
            ) == old_state.marginal_coverage(advertiser, node)


def test_oracle_revenue_matches_legacy_counts(graph):
    """π̃ from the array-backed oracle equals the legacy covered-set counts."""
    new, old = _paired_collections(graph)
    gamma = 2.5
    oracle = RRSetOracle(new, gamma)
    scale = graph.num_nodes * gamma / len(new)
    rng = np.random.default_rng(23)
    for advertiser in range(new.num_advertisers):
        seeds: list[int] = []
        for node in rng.permutation(graph.num_nodes)[:12].tolist():
            marginal = oracle.marginal_revenue(advertiser, node, seeds)
            expected_covered = old.coverage_count(advertiser, seeds + [node])
            base_covered = old.coverage_count(advertiser, seeds)
            assert marginal == pytest.approx(
                scale * (expected_covered - base_covered)
            )
            seeds.append(node)
            assert oracle.revenue(advertiser, seeds) == pytest.approx(
                scale * expected_covered
            )


def test_subsim_edges_examined_counts_only_touched_edges():
    """Satellite fix: the geometric path must not count the overshooting skip.

    On a star graph (all in-edges on one hub, leaves have no in-edges) every
    edge the generator touches is a successful in-edge of the hub, so the
    counter must equal the RR-set size minus the root — the legacy engine
    over-counted by one per geometric visit.
    """
    from repro.graph.builders import from_edge_list

    hub = 0
    leaves = list(range(1, 41))
    graph = from_edge_list([(leaf, hub) for leaf in leaves], num_nodes=41)
    probabilities = np.full(graph.num_edges, 0.3)
    generator = SubsimRRGenerator(graph, probabilities)
    total_successes = 0
    for seed in range(25):
        rr_set = generator.generate(rng=seed, root=hub)
        total_successes += rr_set.size - 1
    assert generator.edges_examined == total_successes
    # The legacy engine counts one extra edge per geometric visit.
    legacy = LegacySubsimRRGenerator(graph, probabilities)
    for seed in range(25):
        legacy.generate(rng=seed, root=hub)
    assert legacy.edges_examined == total_successes + 25


def test_subsim_edges_examined_hub_uniform_block_path():
    """The overshoot fix must hold on the hub-node uniform-probability *block*
    path too, not just the scalar geometric-skip path.

    A dense uniform hub (64 in-edges, p = 0.9) yields far more than 8
    successes per visit, so the generator takes the vectorised block gather
    (``sources[start + positions]``) instead of the ≤8-success scalar loop
    the star-graph test above exercises.  The counter must still report only
    the touched (successful) edges, while the legacy engine over-counts the
    final overshooting skip once per visit.
    """
    from repro.graph.builders import from_edge_list

    hub = 0
    num_leaves = 64
    graph = from_edge_list(
        [(leaf, hub) for leaf in range(1, num_leaves + 1)], num_nodes=num_leaves + 1
    )
    probabilities = np.full(graph.num_edges, 0.9)
    generator = SubsimRRGenerator(graph, probabilities)
    visits = 25
    total_successes = 0
    for seed in range(visits):
        rr_set = generator.generate(rng=seed, root=hub)
        successes = rr_set.size - 1
        # Pin that every visit really took the block path (scalar cap is 8).
        assert successes > 8
        total_successes += successes
    assert generator.edges_examined == total_successes
    legacy = LegacySubsimRRGenerator(graph, probabilities)
    for seed in range(visits):
        legacy.generate(rng=seed, root=hub)
    assert legacy.edges_examined == total_successes + visits


def test_subsim_edges_examined_saturated_uniform_block():
    """p = 1 uniform hub: the whole in-block is taken without geometric draws,
    and both engines must count exactly the block's degree (no overshoot)."""
    from repro.graph.builders import from_edge_list

    hub = 0
    graph = from_edge_list([(leaf, hub) for leaf in range(1, 33)], num_nodes=33)
    probabilities = np.ones(graph.num_edges)
    generator = SubsimRRGenerator(graph, probabilities)
    rr_set = generator.generate(rng=0, root=hub)
    assert rr_set.size == graph.num_nodes
    assert generator.edges_examined == graph.num_edges
    legacy = LegacySubsimRRGenerator(graph, probabilities)
    legacy.generate(rng=0, root=hub)
    assert legacy.edges_examined == graph.num_edges


def test_generate_batch_matches_sequential_generate(graph):
    probabilities = _probabilities(WeightedCascadeModel, graph)
    batch = RRSetGenerator(graph, probabilities).generate_batch(50, rng=13)
    sequential_rng = np.random.default_rng(13)
    sequential_gen = RRSetGenerator(graph, probabilities)
    sequential = [sequential_gen.generate(sequential_rng) for _ in range(50)]
    for batched_set, sequential_set in zip(batch, sequential):
        assert np.array_equal(batched_set, sequential_set)
