"""Delta-fuzzing equivalence harness for the incremental RR-set store.

The contract under test (``docs/architecture.md``, "Incremental
maintenance"): an :class:`RRStore` that absorbs a stream of graph delta
batches through :meth:`~repro.rrsets.store.RRStore.apply_deltas` must be
**bit-identical** — members, tags, roots, inverted index, coverage state —
to a store generated from scratch on the post-delta graph under the same
``(seed, policy)``, while redrawing strictly fewer RR-sets than full
regeneration on localized deltas.

The fuzz seeds are parametrized and extendable without a code change:
``REPRO_DELTA_FUZZ_SEEDS="0-7"`` (ranges and comma lists) widens the sweep,
as the CI delta-fuzz job does.
"""

import os

import numpy as np
import pytest

from repro.diffusion.models import WeightedCascadeModel
from repro.exceptions import GraphError, SamplingError
from repro.graph import preferential_attachment_digraph
from repro.graph.deltas import (
    AddEdge,
    AddNode,
    MutableGraphView,
    RemoveEdge,
    RemoveNode,
    UpdateProbability,
)
from repro.rrsets.collection import CoverageState
from repro.rrsets.estimators import empirical_coverage_fraction
from repro.rrsets.store import RRStore
from repro.runtime import ExecutionPolicy, Runtime


def _fuzz_seeds():
    """Fuzz-seed matrix: ``REPRO_DELTA_FUZZ_SEEDS="0-3,7"`` style override."""
    spec = os.environ.get("REPRO_DELTA_FUZZ_SEEDS", "0-2")
    seeds = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:
            low, high = part.rsplit("-", 1)
            seeds.extend(range(int(low), int(high) + 1))
        else:
            seeds.append(int(part))
    return seeds


FUZZ_SEEDS = _fuzz_seeds()
ENGINES = ("legacy", "subsim")

#: Serial in-process policy — the fuzz loops regenerate constantly, and the
#: pool/inline equivalence has its own dedicated test below.
INLINE = ExecutionPolicy(maintenance="inline")


@pytest.fixture(scope="module")
def micro_graph():
    """A 30-node preferential-attachment micro-graph."""
    return preferential_attachment_digraph(30, out_degree=3, seed=2)


def _ic_probabilities(graph):
    return [
        np.full(graph.num_edges, 0.2, dtype=np.float64),
        np.full(graph.num_edges, 0.35, dtype=np.float64),
    ]


def _make_store(graph, seed=17, policy=INLINE, count=300, runtime=None):
    view = MutableGraphView(graph, _ic_probabilities(graph))
    store = RRStore(view, [1.0, 1.5], seed=seed, policy=policy, runtime=runtime)
    store.generate(count)
    return store


def _fresh_clone(store, runtime=None):
    """A store generated from scratch on ``store``'s *current* graph state."""
    view = MutableGraphView(
        store.view.graph, store.view.advertiser_edge_probabilities
    )
    clone = RRStore(
        view, store.cpes, seed=store.seed, policy=store.policy, runtime=runtime
    )
    clone.generate(len(store))
    return clone


def _assert_bit_identical(maintained, fresh):
    """Full structural equality: collection, roots, index, coverage state."""
    a, b = maintained.collection, fresh.collection
    assert np.array_equal(a.member_array, b.member_array)
    assert np.array_equal(a.set_offsets, b.set_offsets)
    assert np.array_equal(a.tag_array, b.tag_array)
    assert np.array_equal(maintained.roots(), fresh.roots())
    assert np.array_equal(a.membership_counts(), b.membership_counts())
    # Inverted-index consistency on a deterministic sample of keys.
    h = a.membership_counts().shape[0]
    probe = np.random.default_rng(0)
    for _ in range(20):
        advertiser = int(probe.integers(0, h))
        node = int(probe.integers(0, a.num_nodes))
        assert np.array_equal(
            a.sets_containing_array(advertiser, node),
            b.sets_containing_array(advertiser, node),
        )
    # Coverage bookkeeping built on both collections agrees step for step.
    state_a, state_b = CoverageState(a), CoverageState(b)
    for advertiser, node in ((0, 0), (1, 1), (0, 2)):
        assert state_a.add_seed(advertiser, node) == state_b.add_seed(advertiser, node)
    assert state_a.covered_count == state_b.covered_count


def _pick_edge(rng, edges):
    ordered = sorted(edges)
    return ordered[int(rng.integers(0, len(ordered)))]


def _random_batch(rng, view, allow_node_ops=False):
    """One valid delta batch against ``view``'s current state.

    Tracks the evolving edge set while synthesizing (batches apply in
    order), mixing localized probability updates with structural edits and
    — when ``allow_node_ops`` — node-space changes.
    """
    edges = set(view.edges())
    h = view.num_advertisers
    n = view.num_nodes
    batch = []
    size = int(rng.integers(2, 7))
    while len(batch) < size:
        roll = float(rng.random())
        if roll < 0.55 and edges:
            u, v = _pick_edge(rng, edges)
            advertiser = int(rng.integers(0, h))
            batch.append(
                UpdateProbability(
                    u, v, float(rng.uniform(0.05, 0.6)), advertiser=advertiser
                )
            )
        elif roll < 0.7:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v or (u, v) in edges:
                continue
            probabilities = tuple(float(p) for p in rng.uniform(0.05, 0.6, h))
            batch.append(AddEdge(u, v, probabilities))
            edges.add((u, v))
        elif roll < 0.85 and len(edges) > 5:
            u, v = _pick_edge(rng, edges)
            batch.append(RemoveEdge(u, v))
            edges.discard((u, v))
        elif allow_node_ops and roll < 0.92:
            batch.append(AddNode())
            n += 1
        elif allow_node_ops:
            x = int(rng.integers(0, n))
            batch.append(RemoveNode(x))
            edges = {(u, v) for (u, v) in edges if u != x and v != x}
        else:
            continue
    return batch


# --------------------------------------------------------------------------- #
# 1. the delta-fuzzing equivalence harness
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
def test_fuzzed_delta_scripts_match_full_regeneration(
    micro_graph, engine, fuzz_seed
):
    """Random localized scripts: incremental ≡ fresh after every batch."""
    policy = INLINE.evolve(rr_engine=engine)
    store = _make_store(micro_graph, seed=100 + fuzz_seed, policy=policy)
    rng = np.random.default_rng(fuzz_seed)
    redrawn = 0
    for _ in range(4):
        report = store.apply_deltas(_random_batch(rng, store.view))
        assert report.reason in ("localized", "clean")
        assert report.redrawn < report.total
        assert report.kept == report.total - report.redrawn
        redrawn += report.redrawn
        _assert_bit_identical(store, _fresh_clone(store))
    assert store.redraws_total == redrawn


@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
def test_fuzzed_scripts_with_node_ops_match_full_regeneration(
    micro_graph, fuzz_seed
):
    """Scripts that also grow/isolate nodes stay equivalent (globally)."""
    store = _make_store(micro_graph, seed=300 + fuzz_seed, count=200)
    rng = np.random.default_rng(1000 + fuzz_seed)
    for _ in range(3):
        report = store.apply_deltas(
            _random_batch(rng, store.view, allow_node_ops=True)
        )
        assert report.redrawn <= report.total
        _assert_bit_identical(store, _fresh_clone(store))


def test_noop_and_inverse_delta_pairs_keep_identity(micro_graph):
    """No-op updates and remove/re-add inverse pairs leave the graph — and
    the regenerated store — exactly where they started."""
    store = _make_store(micro_graph, seed=42)
    view = store.view
    u, v = view.edges()[0]
    before_edges = view.edges()
    before_probability = view.edge_probability(u, v, 0)
    batch = [
        # No-op: rewrite an existing probability to its current value.
        UpdateProbability(u, v, before_probability, advertiser=0),
        # Inverse pair inside one batch: remove then re-add identically.
        RemoveEdge(u, v),
        AddEdge(u, v, tuple(view.edge_probability(u, v, i) for i in range(2))),
    ]
    report = store.apply_deltas(batch)
    # The graph is unchanged; invalidation is conservative but localized.
    assert view.edges() == before_edges
    assert view.edge_probability(u, v, 0) == before_probability
    assert report.reason == "localized"
    assert report.redrawn < report.total
    _assert_bit_identical(store, _fresh_clone(store))


def test_generate_in_chunks_matches_single_call(micro_graph):
    """Slot substreams are keyed by absolute index, not by generate() call."""
    chunked = _make_store(micro_graph, seed=7, count=0)
    chunked.generate(20)
    chunked.generate(40)
    single = _make_store(micro_graph, seed=7, count=60)
    _assert_bit_identical(chunked, single)


# --------------------------------------------------------------------------- #
# 2. invalidation semantics
# --------------------------------------------------------------------------- #
def test_localized_probability_update_redraws_strict_subset(micro_graph):
    store = _make_store(micro_graph, seed=5)
    u, v = store.view.edges()[0]
    report = store.apply_deltas([UpdateProbability(u, v, 0.9, advertiser=1)])
    assert report.reason == "localized"
    assert 0 < report.redrawn < report.total
    _assert_bit_identical(store, _fresh_clone(store))


def test_add_node_invalidates_the_whole_store(micro_graph):
    """Growing the id space changes the root-draw domain for every slot."""
    store = _make_store(micro_graph, seed=5)
    report = store.apply_deltas([AddNode(count=2)])
    assert report.reason == "node-space-changed"
    assert report.redrawn == report.total
    assert store.view.num_nodes == micro_graph.num_nodes + 2
    assert store.collection.num_nodes == micro_graph.num_nodes + 2
    _assert_bit_identical(store, _fresh_clone(store))


def test_remove_node_isolates_and_stays_localized(micro_graph):
    store = _make_store(micro_graph, seed=5)
    report = store.apply_deltas([RemoveNode(0)])
    assert report.reason == "localized"
    assert report.redrawn < report.total
    # Isolation semantics: the id space is stable, node 0 has no edges left.
    assert store.view.num_nodes == micro_graph.num_nodes
    assert not any(0 in (u, v) for u, v in store.view.edges())
    _assert_bit_identical(store, _fresh_clone(store))


def test_clean_batch_on_empty_store_reports_clean(micro_graph):
    store = _make_store(micro_graph, seed=5, count=0)
    u, v = store.view.edges()[0]
    report = store.apply_deltas([UpdateProbability(u, v, 0.4)])
    assert (report.total, report.redrawn, report.reason) == (0, 0, "clean")


def test_out_of_band_view_mutation_raises(micro_graph):
    """Mutating the view behind the store's back must fail loudly."""
    store = _make_store(micro_graph, seed=5)
    u, v = store.view.edges()[0]
    store.view.apply([UpdateProbability(u, v, 0.4)])
    with pytest.raises(SamplingError, match="out-of-band"):
        store.collection
    with pytest.raises(SamplingError, match="out-of-band"):
        store.generate(1)
    with pytest.raises(SamplingError, match="out-of-band"):
        store.apply_deltas([UpdateProbability(u, v, 0.5)])


def test_provenance_records_roots_and_tags(micro_graph):
    store = _make_store(micro_graph, seed=5, count=50)
    roots = store.roots()
    for index in (0, 13, 49):
        record = store.provenance(index)
        assert record.slot == index
        assert record.root == roots[index]
        assert record.tag == store.collection.tag(index)
        assert record.root in store.collection.rr_set(index)


# --------------------------------------------------------------------------- #
# 3. execution-policy equivalence (pool vs inline)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ENGINES)
def test_pool_and_inline_maintenance_are_bit_identical(micro_graph, engine):
    inline_policy = ExecutionPolicy(rr_engine=engine, maintenance="inline")
    pool_policy = ExecutionPolicy(rr_engine=engine, n_jobs=2, maintenance="pool")
    inline_store = _make_store(micro_graph, seed=9, policy=inline_policy)
    rng = np.random.default_rng(3)
    script = [_random_batch(rng, inline_store.view) for _ in range(2)]
    for batch in script:
        inline_store.apply_deltas(batch)
    with Runtime(pool_policy) as runtime:
        pool_store = _make_store(
            micro_graph, seed=9, policy=pool_policy, runtime=runtime
        )
        for batch in script:
            pool_store.apply_deltas(batch)
        _assert_bit_identical(inline_store, pool_store)


# --------------------------------------------------------------------------- #
# 4. statistical guardrail: maintained ≡ fresh in distribution
# --------------------------------------------------------------------------- #
def _ks_statistic(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (no scipy dependency)."""
    grid = np.union1d(sample_a, sample_b)
    cdf_a = np.searchsorted(np.sort(sample_a), grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(np.sort(sample_b), grid, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_threshold(n: int, m: int, alpha: float = 1e-3) -> float:
    """Critical KS distance at significance ``alpha`` (asymptotic form)."""
    c = np.sqrt(-0.5 * np.log(alpha / 2.0))
    return float(c * np.sqrt((n + m) / (n * m)))


@pytest.mark.parametrize("model", ["ic", "wc"])
def test_maintained_store_is_statistically_equivalent_to_fresh(model):
    """A delta-maintained store and an *independently seeded* fresh store on
    the same final graph must agree in distribution: KS on RR-set sizes and
    coverage fractions within 3σ of the pooled binomial."""
    graph = preferential_attachment_digraph(30, out_degree=3, seed=2)
    if model == "ic":
        probabilities = _ic_probabilities(graph)
    else:
        wc = np.asarray(
            WeightedCascadeModel(graph).edge_probabilities(), dtype=np.float64
        )
        probabilities = [wc, np.clip(wc * 0.8, 0.0, 1.0)]
    count = 3000
    view = MutableGraphView(graph, probabilities)
    maintained = RRStore(view, [1.0, 1.5], seed=11, policy=INLINE)
    maintained.generate(count)
    rng = np.random.default_rng(5)
    for _ in range(3):
        maintained.apply_deltas(_random_batch(rng, view))
    fresh = RRStore(
        MutableGraphView(view.graph, view.advertiser_edge_probabilities),
        [1.0, 1.5],
        seed=9999,  # deliberately different substreams
        policy=INLINE,
    )
    fresh.generate(count)
    sizes_a = np.diff(maintained.collection.set_offsets).astype(np.float64)
    sizes_b = np.diff(fresh.collection.set_offsets).astype(np.float64)
    assert _ks_statistic(sizes_a, sizes_b) <= _ks_threshold(count, count)
    allocation = {0: [0, 1], 1: [1, 2]}
    fraction_a = empirical_coverage_fraction(maintained.collection, allocation)
    fraction_b = empirical_coverage_fraction(fresh.collection, allocation)
    pooled = 0.5 * (fraction_a + fraction_b)
    sigma = np.sqrt(max(pooled * (1.0 - pooled), 1e-12) * (2.0 / count))
    assert abs(fraction_a - fraction_b) <= 3.0 * sigma
    # The revenue estimator is a fixed scaling of the coverage fraction, so
    # the same bound transfers directly.
    scale = view.num_nodes * maintained.gamma
    assert abs(
        maintained.estimate_total_revenue(allocation)
        - fresh.estimate_total_revenue(allocation)
    ) <= 3.0 * sigma * scale + 1e-9


# --------------------------------------------------------------------------- #
# 5. MutableGraphView semantics
# --------------------------------------------------------------------------- #
class TestMutableGraphView:
    @pytest.fixture
    def view(self, micro_graph):
        return MutableGraphView(micro_graph, _ic_probabilities(micro_graph))

    def test_snapshot_stays_canonically_ordered(self, view):
        n = view.num_nodes
        u, v = view.edges()[0]
        view.apply(
            [
                RemoveEdge(u, v),
                AddEdge(u, v, (0.5, 0.6)),
                AddEdge(n - 1, 0, (0.1, 0.2)) if not view.has_edge(n - 1, 0)
                else UpdateProbability(u, v, 0.5, advertiser=0),
            ]
        )
        graph = view.graph
        keys = list(zip(graph.sources.tolist(), graph.targets.tolist()))
        assert keys == sorted(keys)
        # Probability arrays stay aligned with the canonical edge order.
        index = keys.index((u, v))
        assert view.advertiser_edge_probabilities[0][index] == 0.5
        assert view.advertiser_edge_probabilities[1][index] == 0.6

    def test_epoch_and_log_advance_per_batch(self, view):
        u, v = view.edges()[0]
        assert view.epoch == 0
        view.apply([UpdateProbability(u, v, 0.4)])
        view.apply([UpdateProbability(u, v, 0.3, advertiser=1)])
        assert view.epoch == 2
        assert [epoch for epoch, _ in view.log] == [1, 2]

    def test_dirty_region_per_delta_kind(self, view):
        u, v = view.edges()[0]
        effect = view.apply([UpdateProbability(u, v, 0.4, advertiser=1)])
        assert effect.dirty_nodes.size == 0
        assert effect.dirty_nodes_by_advertiser[1].tolist() == [v]
        effect = view.apply([UpdateProbability(u, v, 0.4)])
        assert effect.dirty_nodes.tolist() == [v]
        effect = view.apply([AddNode()])
        assert effect.num_nodes_changed and effect.is_global

    def test_invalid_batches_are_rejected_atomically(self, view):
        u, v = view.edges()[0]
        epoch = view.epoch
        edges = view.edges()
        probability = view.edge_probability(u, v, 0)
        with pytest.raises(GraphError):
            # First delta is valid; second fails — nothing may commit.
            view.apply([UpdateProbability(u, v, 0.9), AddEdge(u, v, (0.1, 0.1))])
        assert view.epoch == epoch
        assert view.edges() == edges
        assert view.edge_probability(u, v, 0) == probability

    def test_validation_errors(self, view):
        u, v = view.edges()[0]
        with pytest.raises(GraphError):
            view.apply([AddEdge(0, 0, (0.1, 0.1))])  # self-loop
        with pytest.raises(GraphError):
            view.apply([AddEdge(u, v, (0.1,))])  # wrong arity
        with pytest.raises(GraphError):
            view.apply([UpdateProbability(u, v, 1.5)])  # out of [0, 1]
        with pytest.raises(GraphError):
            view.apply([UpdateProbability(u, v, 0.5, advertiser=9)])
        missing = next(
            (a, b)
            for a in range(view.num_nodes)
            for b in range(view.num_nodes)
            if a != b and not view.has_edge(a, b)
        )
        with pytest.raises(GraphError):
            view.apply([RemoveEdge(*missing)])
        with pytest.raises(GraphError):
            view.apply([AddNode(count=0)])
        with pytest.raises(GraphError):
            view.apply([RemoveNode(view.num_nodes)])

    def test_remove_node_keeps_id_space(self, view):
        n = view.num_nodes
        view.apply([RemoveNode(1)])
        assert view.num_nodes == n
        assert not any(1 in (u, v) for u, v in view.edges())
