"""Tests for RRCollection and CoverageState."""

import numpy as np
import pytest

from repro.exceptions import SamplingError
from repro.rrsets.collection import CoverageState, RRCollection


@pytest.fixture
def collection():
    """A small hand-built collection over 5 nodes and 2 advertisers."""
    coll = RRCollection(num_nodes=5, num_advertisers=2)
    coll.add([0, 1], advertiser=0)
    coll.add([1, 2], advertiser=0)
    coll.add([3], advertiser=1)
    coll.add([2, 3, 4], advertiser=1)
    return coll


class TestRRCollection:
    def test_len_and_total_size(self, collection):
        assert len(collection) == 4
        assert collection.total_size == 8

    def test_tags(self, collection):
        assert collection.tags().tolist() == [0, 0, 1, 1]
        assert collection.tag(2) == 1

    def test_count_per_advertiser(self, collection):
        assert collection.count_per_advertiser().tolist() == [2, 2]

    def test_sets_containing(self, collection):
        assert collection.sets_containing(0, 1) == [0, 1]
        assert collection.sets_containing(1, 3) == [2, 3]
        assert collection.sets_containing(0, 3) == []

    def test_coverage_count(self, collection):
        assert collection.coverage_count(0, [1]) == 2
        assert collection.coverage_count(0, [0, 2]) == 2
        assert collection.coverage_count(1, [4]) == 1
        assert collection.coverage_count(1, []) == 0

    def test_rr_set_members_are_unique_and_sorted(self):
        coll = RRCollection(4, 1)
        coll.add([2, 2, 0], advertiser=0)
        assert coll.rr_set(0).tolist() == [0, 2]

    def test_invalid_tag_rejected(self):
        coll = RRCollection(4, 1)
        with pytest.raises(SamplingError):
            coll.add([0], advertiser=5)

    def test_invalid_node_rejected(self):
        coll = RRCollection(4, 1)
        with pytest.raises(SamplingError):
            coll.add([9], advertiser=0)

    def test_empty_rr_set_rejected(self):
        coll = RRCollection(4, 1)
        with pytest.raises(SamplingError):
            coll.add([], advertiser=0)

    def test_extend(self):
        coll = RRCollection(4, 2)
        coll.extend([([0], 0), ([1, 2], 1)])
        assert len(coll) == 2

    def test_memory_proxy_positive(self, collection):
        assert collection.memory_proxy_bytes() > 0

    def test_invalid_construction(self):
        with pytest.raises(SamplingError):
            RRCollection(0, 1)
        with pytest.raises(SamplingError):
            RRCollection(5, 0)


class TestShardAndCompactAPI:
    def _empty_shard(self):
        empty = np.empty(0, dtype=np.int64)
        return (empty, empty.copy(), empty.copy())

    def test_extend_from_shards_skips_zero_length_shards(self):
        coll = RRCollection(5, 2)
        coll.extend_from_shards([self._empty_shard()])
        assert len(coll) == 0
        coll.extend_from_shards(
            [
                self._empty_shard(),
                (
                    np.array([0, 1, 2], dtype=np.int64),
                    np.array([2, 1], dtype=np.int64),
                    np.array([0, 1], dtype=np.int64),
                ),
                self._empty_shard(),
            ]
        )
        assert len(coll) == 2
        assert coll.rr_set(0).tolist() == [0, 1]
        assert coll.rr_set(1).tolist() == [2]
        assert coll.tags().tolist() == [0, 1]

    def test_extend_from_shards_rejects_empty_member_sets(self):
        coll = RRCollection(5, 2)
        with pytest.raises(SamplingError):
            coll.extend_from_shards(
                [
                    (
                        np.array([0], dtype=np.int64),
                        np.array([1, 0], dtype=np.int64),
                        np.array([0, 0], dtype=np.int64),
                    )
                ]
            )

    def test_extend_from_shards_rejects_mismatched_sizes(self):
        with pytest.raises(SamplingError):
            RRCollection(5, 2).extend_from_shards(
                [
                    (
                        np.array([0, 1], dtype=np.int64),
                        np.array([1], dtype=np.int64),
                        np.array([0], dtype=np.int64),
                    )
                ]
            )

    def test_compact_drop_preserves_order(self, collection):
        compacted = collection.compact(drop=[1, 3])
        assert len(compacted) == 2
        assert compacted.rr_set(0).tolist() == [0, 1]
        assert compacted.rr_set(1).tolist() == [3]
        assert compacted.tags().tolist() == [0, 1]

    def test_compact_replace_keeps_indices(self, collection):
        compacted = collection.compact(replacements={1: ([4, 0], 1)})
        assert len(compacted) == len(collection)
        assert compacted.rr_set(1).tolist() == [0, 4]
        assert compacted.tag(1) == 1
        for index in (0, 2, 3):
            assert compacted.rr_set(index).tolist() == collection.rr_set(index).tolist()
            assert compacted.tag(index) == collection.tag(index)

    def test_compact_rebuilds_inverted_index(self, collection):
        compacted = collection.compact(drop=[0])
        # Old set 1 ([1, 2], advertiser 0) is now index 0.
        assert compacted.sets_containing(0, 1) == [0]
        assert compacted.sets_containing(0, 0) == []

    def test_compact_validation(self, collection):
        with pytest.raises(SamplingError):
            collection.compact(drop=[99])
        with pytest.raises(SamplingError):
            collection.compact(replacements={99: ([0], 0)})
        with pytest.raises(SamplingError):
            collection.compact(drop=[1], replacements={1: ([0], 0)})

    def test_compact_everything_dropped_is_empty(self, collection):
        compacted = collection.compact(drop=range(len(collection)))
        assert len(compacted) == 0


class TestCoverageState:
    def test_initial_marginals_match_membership(self, collection):
        state = CoverageState(collection)
        assert state.marginal_coverage(0, 1) == 2
        assert state.marginal_coverage(1, 3) == 2
        assert state.marginal_coverage(0, 4) == 0

    def test_add_seed_covers_sets(self, collection):
        state = CoverageState(collection)
        newly = state.add_seed(0, 1)
        assert newly == 2
        assert state.covered_count == 2
        assert state.covered_count_for(0) == 2
        assert state.is_covered(0) and state.is_covered(1)

    def test_marginals_decrease_after_seed(self, collection):
        state = CoverageState(collection)
        state.add_seed(0, 1)
        # Node 2 appeared in RR-set 1 (advertiser 0), now covered.
        assert state.marginal_coverage(0, 2) == 0
        # Advertiser 1 marginals untouched.
        assert state.marginal_coverage(1, 2) == 1

    def test_adding_same_seed_twice_adds_nothing(self, collection):
        state = CoverageState(collection)
        state.add_seed(0, 1)
        assert state.add_seed(0, 1) == 0

    def test_copy_is_independent(self, collection):
        state = CoverageState(collection)
        clone = state.copy()
        state.add_seed(0, 1)
        assert clone.covered_count == 0
        assert clone.marginal_coverage(0, 1) == 2

    def test_covered_count_never_exceeds_collection_size(self, collection):
        state = CoverageState(collection)
        for node in range(5):
            for advertiser in range(2):
                state.add_seed(advertiser, node)
        assert state.covered_count == len(collection)
