"""Tests for RR-set generation (standard and SUBSIM)."""

import numpy as np
import pytest

from repro.diffusion.models import WeightedCascadeModel
from repro.diffusion.simulation import exact_spread
from repro.exceptions import SamplingError
from repro.graph.builders import from_edge_list
from repro.graph.generators import preferential_attachment_digraph
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator


class TestRRSetGenerator:
    def test_rr_set_contains_root(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        rr_set = generator.generate(rng=1, root=3)
        assert 3 in rr_set.tolist()

    def test_deterministic_edges_give_full_ancestry(self, path_graph):
        generator = RRSetGenerator(path_graph, np.ones(path_graph.num_edges))
        rr_set = generator.generate(rng=1, root=3)
        assert set(rr_set.tolist()) == {0, 1, 2, 3}

    def test_zero_probability_gives_singleton(self, path_graph):
        generator = RRSetGenerator(path_graph, np.zeros(path_graph.num_edges))
        rr_set = generator.generate(rng=1, root=3)
        assert rr_set.tolist() == [3]

    def test_generate_many_count(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        assert len(generator.generate_many(25, rng=2)) == 25

    def test_invalid_probability_shape(self, diamond_graph):
        with pytest.raises(SamplingError):
            RRSetGenerator(diamond_graph, np.ones(1))

    def test_invalid_probability_range(self, diamond_graph):
        with pytest.raises(SamplingError):
            RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 1.5))

    def test_invalid_root(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.zeros(diamond_graph.num_edges))
        with pytest.raises(SamplingError):
            generator.generate(root=10)

    def test_empty_graph_rejected(self):
        graph = from_edge_list([], num_nodes=0)
        with pytest.raises(SamplingError):
            RRSetGenerator(graph, np.empty(0)).generate()

    def test_edges_examined_counter_grows(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.ones(diamond_graph.num_edges))
        before = generator.edges_examined
        generator.generate(rng=1, root=3)
        assert generator.edges_examined > before

    def test_generate_batch_provenance_capture(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        records = []
        rr_sets = generator.generate_batch(10, rng=3, provenance=records)
        assert len(records) == len(rr_sets) == 10
        for rr_set, record in zip(rr_sets, records):
            assert record.root in rr_set
            assert record.edges_examined >= 0

    def test_generate_batch_provenance_does_not_change_draws(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        plain = generator.generate_batch(10, rng=3)
        captured = generator.generate_batch(10, rng=3, provenance=[])
        assert all(np.array_equal(a, b) for a, b in zip(plain, captured))

    def test_spread_estimate_unbiased(self, diamond_graph):
        """n * Pr[seed hits RR-set] must approximate the exact spread."""
        probability = 0.5
        probs = np.full(diamond_graph.num_edges, probability)
        generator = RRSetGenerator(diamond_graph, probs)
        rr_sets = generator.generate_many(6000, rng=3)
        seeds = {0}
        hits = sum(1 for rr in rr_sets if seeds & set(rr.tolist()))
        estimate = diamond_graph.num_nodes * hits / len(rr_sets)
        truth = exact_spread(diamond_graph, probs, seeds)
        assert estimate == pytest.approx(truth, rel=0.1)


class TestSubsimGenerator:
    def test_matches_distribution_of_standard_generator(self):
        """SUBSIM sampling must estimate the same spread as the standard generator."""
        graph = preferential_attachment_digraph(80, out_degree=3, seed=1)
        model = WeightedCascadeModel(graph)
        probs = model.edge_probabilities()
        standard = RRSetGenerator(graph, probs)
        subsim = SubsimRRGenerator(graph, probs)
        seeds = {0, 1, 2}
        def estimate(generator, seed):
            rr_sets = generator.generate_many(3000, rng=seed)
            hits = sum(1 for rr in rr_sets if seeds & set(rr.tolist()))
            return graph.num_nodes * hits / len(rr_sets)
        assert estimate(subsim, 5) == pytest.approx(estimate(standard, 6), rel=0.15)

    def test_uniform_probability_one_keeps_all_in_edges(self, path_graph):
        generator = SubsimRRGenerator(path_graph, np.ones(path_graph.num_edges))
        rr_set = generator.generate(rng=1, root=3)
        assert set(rr_set.tolist()) == {0, 1, 2, 3}

    def test_uniform_probability_zero_gives_singleton(self, path_graph):
        generator = SubsimRRGenerator(path_graph, np.zeros(path_graph.num_edges))
        assert generator.generate(rng=1, root=2).tolist() == [2]

    def test_heterogeneous_probabilities_fall_back(self, diamond_graph):
        probs = np.linspace(0.1, 0.9, diamond_graph.num_edges)
        generator = SubsimRRGenerator(diamond_graph, probs)
        rr_set = generator.generate(rng=1, root=3)
        assert 3 in rr_set.tolist()

    def test_examines_fewer_edges_than_standard_on_sparse_probabilities(self):
        graph = preferential_attachment_digraph(150, out_degree=5, seed=2)
        probs = np.full(graph.num_edges, 0.02)
        standard = RRSetGenerator(graph, probs)
        subsim = SubsimRRGenerator(graph, probs)
        standard.generate_many(300, rng=3)
        subsim.generate_many(300, rng=3)
        assert subsim.edges_examined < standard.edges_examined
