"""Tests for the uniform advertiser sampler and the revenue estimators."""

import numpy as np
import pytest

from repro.diffusion.simulation import exact_spread
from repro.exceptions import SamplingError
from repro.rrsets.estimators import (
    coverage_counts_by_node,
    empirical_coverage_fraction,
    estimate_advertiser_revenue,
    estimate_marginal_revenue,
    estimate_spread,
    estimate_total_revenue,
    per_advertiser_estimates,
)
from repro.rrsets.generator import RRSetGenerator
from repro.rrsets.uniform import PerAdvertiserRRSampler, UniformRRSampler
from repro.rrsets.collection import RRCollection


@pytest.fixture
def two_ad_sampler(diamond_graph):
    probabilities = [
        np.full(diamond_graph.num_edges, 0.5),
        np.full(diamond_graph.num_edges, 0.2),
    ]
    return UniformRRSampler(diamond_graph, probabilities, cpes=[1.0, 3.0], seed=2)


class TestUniformSampler:
    def test_gamma(self, two_ad_sampler):
        assert two_ad_sampler.gamma == pytest.approx(4.0)

    def test_advertiser_frequencies_proportional_to_cpe(self, two_ad_sampler):
        draws = [two_ad_sampler.sample_advertiser() for _ in range(4000)]
        fraction_ad1 = sum(draws) / len(draws)
        assert fraction_ad1 == pytest.approx(0.75, abs=0.05)

    def test_generate_collection_size_and_tags(self, two_ad_sampler, diamond_graph):
        collection = two_ad_sampler.generate_collection(200)
        assert len(collection) == 200
        assert collection.num_nodes == diamond_graph.num_nodes
        assert set(collection.tags().tolist()) <= {0, 1}

    def test_generate_into_existing_collection(self, two_ad_sampler):
        collection = two_ad_sampler.generate_collection(50)
        two_ad_sampler.generate_collection(30, into=collection)
        assert len(collection) == 80

    def test_mismatched_inputs_rejected(self, diamond_graph):
        with pytest.raises(SamplingError):
            UniformRRSampler(diamond_graph, [np.zeros(diamond_graph.num_edges)], cpes=[1.0, 2.0])

    def test_non_positive_cpe_rejected(self, diamond_graph):
        with pytest.raises(SamplingError):
            UniformRRSampler(
                diamond_graph, [np.zeros(diamond_graph.num_edges)], cpes=[0.0]
            )

    def test_negative_count_rejected(self, two_ad_sampler):
        with pytest.raises(SamplingError):
            two_ad_sampler.generate_collection(-1)


class TestPerAdvertiserSampler:
    def test_pools_per_advertiser(self, diamond_graph):
        sampler = PerAdvertiserRRSampler(
            diamond_graph,
            [np.full(diamond_graph.num_edges, 0.5), np.full(diamond_graph.num_edges, 0.5)],
            seed=1,
        )
        collection = sampler.generate_collection(40)
        assert len(collection) == 80
        assert collection.count_per_advertiser().tolist() == [40, 40]

    def test_generate_pool_bounds(self, diamond_graph):
        sampler = PerAdvertiserRRSampler(
            diamond_graph, [np.full(diamond_graph.num_edges, 0.5)], seed=1
        )
        with pytest.raises(SamplingError):
            sampler.generate_pool(5, 10)


class TestEstimators:
    def test_total_revenue_unbiasedness(self, diamond_graph, two_ad_sampler):
        """π̃ must match cpe-weighted exact spreads on the tiny diamond graph."""
        collection = two_ad_sampler.generate_collection(20000)
        allocation = {0: {0}, 1: {3}}
        estimate = estimate_total_revenue(collection, allocation, gamma=4.0)
        truth = 1.0 * exact_spread(
            diamond_graph, np.full(diamond_graph.num_edges, 0.5), {0}
        ) + 3.0 * exact_spread(diamond_graph, np.full(diamond_graph.num_edges, 0.2), {3})
        assert estimate == pytest.approx(truth, rel=0.08)

    def test_per_advertiser_revenue_sums_to_total(self, two_ad_sampler):
        collection = two_ad_sampler.generate_collection(500)
        allocation = {0: {0, 1}, 1: {2}}
        total = estimate_total_revenue(collection, allocation, gamma=4.0)
        parts = per_advertiser_estimates(collection, allocation, gamma=4.0)
        assert sum(parts.values()) == pytest.approx(total)

    def test_marginal_revenue_consistency(self, two_ad_sampler):
        collection = two_ad_sampler.generate_collection(800)
        base = estimate_advertiser_revenue(collection, 0, {1}, gamma=4.0)
        with_node = estimate_advertiser_revenue(collection, 0, {1, 0}, gamma=4.0)
        marginal = estimate_marginal_revenue(collection, 0, 0, {1}, gamma=4.0)
        assert marginal == pytest.approx(with_node - base)

    def test_empty_collection_rejected(self):
        empty = RRCollection(3, 1)
        with pytest.raises(SamplingError):
            estimate_total_revenue(empty, {0: {0}}, gamma=1.0)

    def test_estimate_spread_simple_pool(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        rr_sets = generator.generate_many(5000, rng=4)
        estimate = estimate_spread(rr_sets, {0}, diamond_graph.num_nodes)
        truth = exact_spread(diamond_graph, np.full(diamond_graph.num_edges, 0.5), {0})
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_estimate_spread_empty_seed_set(self, diamond_graph):
        generator = RRSetGenerator(diamond_graph, np.full(diamond_graph.num_edges, 0.5))
        rr_sets = generator.generate_many(10, rng=4)
        assert estimate_spread(rr_sets, set(), diamond_graph.num_nodes) == 0.0

    def test_coverage_counts_by_node(self, diamond_graph):
        rr_sets = [np.array([0, 1]), np.array([1, 2])]
        counts = coverage_counts_by_node(rr_sets, diamond_graph.num_nodes)
        assert counts.tolist() == [1, 2, 1, 0]

    def test_empirical_coverage_fraction_bounds(self, two_ad_sampler):
        collection = two_ad_sampler.generate_collection(300)
        fraction = empirical_coverage_fraction(collection, {0: {0, 1, 2, 3}, 1: {0, 1, 2, 3}})
        assert 0.0 <= fraction <= 1.0
        assert fraction == pytest.approx(1.0)
