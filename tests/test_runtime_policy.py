"""Policy & runtime equivalence tier.

Pins the contracts of the :mod:`repro.runtime` layer:

1. **Policy algebra** — presets, the ``from_flags`` adapter, conflict
   rejection (``fast=True`` + an explicit ``False`` engine flag), and the
   derived ``rng_compat`` guarantee.
2. **Policy ↔ legacy-flag bit-identity** — every algorithm must return
   bit-identical results when configured through ``policy=`` and through the
   deprecated keyword flags: RMA, OneBatchRM, TI-CARM/TI-CSRM and the
   oracle-setting algorithms.
3. **Pool reuse** — a :class:`~repro.runtime.Runtime` block spawns its
   worker pool at most once across all of RMA's doubling rounds, and the
   persistent pool is bit-identical to per-call pools.
4. **Deprecation shims** — every legacy flag still works but warns; this
   suite runs under ``-W error::DeprecationWarning`` in CI, so any unshimmed
   internal use of a legacy flag fails the build.

All seeds are fixed; the suite is deterministic.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.advertising.oracle import MonteCarloOracle, RRSetOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.core.greedy import greedy_single_advertiser
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import (
    SamplingParameters,
    one_batch_rm,
    rm_without_oracle,
)
from repro.datasets.registry import build_dataset
from repro.diffusion.engine import monte_carlo_spread as engine_monte_carlo_spread
from repro.exceptions import PolicyError, SolverError
from repro.experiments.runner import run_algorithm
from repro.parallel import MAX_JOBS_ENV
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import (
    ExecutionPolicy,
    Runtime,
    acquire_executor,
    coerce_policy,
    current_runtime,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        "lastfm_like", num_advertisers=3, scale=0.15, seed=1, singleton_rr_sets=200
    )


@pytest.fixture(scope="module")
def rr_oracle(dataset):
    sampler = UniformRRSampler(
        dataset.instance.graph,
        dataset.instance.all_edge_probabilities(),
        dataset.instance.cpes(),
        seed=7,
    )
    return RRSetOracle(sampler.generate_collection(800), dataset.instance.gamma)


def _add_task(payload, shard):
    """Module-level (picklable) toy task for executor-level tests."""
    return payload + shard


def _same_result(a, b, num_advertisers=3):
    assert a.revenue == b.revenue
    assert all(a.allocation.seeds(i) == b.allocation.seeds(i) for i in range(num_advertisers))


def _legacy_params(**kwargs):
    """Build parameters with deprecated flags, swallowing the shim warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return kwargs.pop("cls", SamplingParameters)(**kwargs)


# --------------------------------------------------------------------------- #
# policy algebra
# --------------------------------------------------------------------------- #
class TestExecutionPolicy:
    def test_seed_preset(self):
        policy = ExecutionPolicy.seed()
        assert policy.rr_engine == "legacy"
        assert policy.mc_engine == "legacy"
        assert policy.greedy_engine == "scalar"
        assert policy.n_jobs is None
        assert policy.rng_compat is True
        assert not policy.use_subsim and not policy.use_batched_mc
        assert not policy.use_batched_greedy

    def test_fast_preset(self):
        policy = ExecutionPolicy.fast(n_jobs=4)
        assert policy.use_subsim and policy.use_batched_mc and policy.use_batched_greedy
        assert policy.n_jobs == 4
        assert policy.rng_compat is False

    def test_preset_lookup(self):
        assert ExecutionPolicy.preset("seed") == ExecutionPolicy.seed()
        assert ExecutionPolicy.preset("fast") == ExecutionPolicy.fast()
        assert ExecutionPolicy.preset("fast", n_jobs=2).n_jobs == 2
        with pytest.raises(PolicyError):
            ExecutionPolicy.preset("warp")

    def test_from_flags_mapping(self):
        policy = ExecutionPolicy.from_flags(
            use_subsim=True, use_batched_mc=True, use_batched_greedy=True, n_jobs=3
        )
        assert policy == ExecutionPolicy.fast(n_jobs=3)
        assert ExecutionPolicy.from_flags() == ExecutionPolicy.seed()
        assert ExecutionPolicy.from_flags(batch_size=64).mc_batch_size == 64

    def test_from_flags_fast_expands(self):
        assert ExecutionPolicy.from_flags(fast=True) == ExecutionPolicy.fast()
        assert ExecutionPolicy.from_flags(fast=True, n_jobs=2).n_jobs == 2

    @pytest.mark.parametrize(
        "conflicting", ["use_subsim", "use_batched_mc", "use_batched_greedy"]
    )
    def test_fast_conflicts_raise_value_error(self, conflicting):
        with pytest.raises(ValueError, match="conflicting engine flags"):
            ExecutionPolicy.from_flags(fast=True, **{conflicting: False})

    def test_fast_with_redundant_true_flags_is_fine(self):
        policy = ExecutionPolicy.from_flags(fast=True, use_batched_mc=True)
        assert policy.use_batched_mc

    def test_field_validation(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy(rr_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(mc_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(greedy_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(n_jobs=0)
        with pytest.raises(PolicyError):
            ExecutionPolicy(mc_batch_size=0)

    def test_rng_compat_is_derived_and_validated(self):
        assert ExecutionPolicy(n_jobs=1).rng_compat is True
        assert ExecutionPolicy(n_jobs=2).rng_compat is False
        assert ExecutionPolicy(rr_engine="subsim").rng_compat is False
        # The batched greedy engine is bit-identical, so it keeps the guarantee.
        assert ExecutionPolicy(greedy_engine="batched").rng_compat is True
        with pytest.raises(PolicyError, match="rng_compat"):
            ExecutionPolicy(mc_engine="batched", rng_compat=True)

    def test_evolve_rederives_rng_compat(self):
        seed = ExecutionPolicy.seed()
        evolved = seed.evolve(rr_engine="subsim")
        assert evolved.rr_engine == "subsim" and evolved.rng_compat is False
        back = evolved.evolve(rr_engine="legacy")
        assert back.rng_compat is True

    def test_describe_names_presets(self):
        assert ExecutionPolicy.seed().describe().startswith("seed:")
        assert ExecutionPolicy.fast().describe().startswith("fast:")
        assert "n_jobs=serial" in ExecutionPolicy.seed().describe()

    def test_coerce_policy_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PolicyError):
                coerce_policy(ExecutionPolicy.seed(), "here", use_subsim=True)


# --------------------------------------------------------------------------- #
# parameter objects
# --------------------------------------------------------------------------- #
class TestParameterObjects:
    def test_sampling_defaults_resolve_to_seed(self):
        params = SamplingParameters()
        assert params.use_subsim is False  # legacy field keeps its default
        assert params.resolved_policy() == ExecutionPolicy.seed()

    def test_sampling_policy_field_wins(self):
        policy = ExecutionPolicy.fast(n_jobs=2)
        assert SamplingParameters(policy=policy).resolved_policy() is policy

    def test_sampling_legacy_fields_fold_in_and_warn(self):
        with pytest.warns(DeprecationWarning, match="use_subsim"):
            params = SamplingParameters(use_subsim=True, n_jobs=2)
        resolved = params.resolved_policy()
        assert resolved.use_subsim and resolved.n_jobs == 2
        assert not resolved.use_batched_greedy

    def test_sampling_both_channels_conflict(self):
        # PolicyError is a ValueError, matching the documented contract.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PolicyError, match="not both"):
                SamplingParameters(use_subsim=True, policy=ExecutionPolicy.seed())

    def test_ti_mirror(self):
        assert TIParameters().resolved_policy() == ExecutionPolicy.seed()
        with pytest.warns(DeprecationWarning, match="n_jobs"):
            params = TIParameters(n_jobs=2)
        assert params.resolved_policy().n_jobs == 2
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PolicyError, match="not both"):
                TIParameters(use_batched_greedy=True, policy=ExecutionPolicy.seed())

    def test_validate_still_rejects_bad_n_jobs_with_solver_error(self):
        with pytest.warns(DeprecationWarning):
            params = SamplingParameters(n_jobs=0)
        with pytest.raises(SolverError):
            params.validate()


# --------------------------------------------------------------------------- #
# policy ↔ legacy bit-identity, per algorithm
# --------------------------------------------------------------------------- #
class TestPolicyEquivalence:
    @staticmethod
    def _sampling(policy=None, **legacy):
        base = dict(initial_rr_sets=128, max_rr_sets=256, seed=1)
        if legacy:
            return _legacy_params(**base, **legacy)
        return SamplingParameters(**base, policy=policy)

    def test_rma_seed_policy_matches_default(self, dataset):
        _same_result(
            rm_without_oracle(dataset.instance, self._sampling()),
            rm_without_oracle(dataset.instance, self._sampling(ExecutionPolicy.seed())),
        )

    def test_rma_engine_policy_matches_legacy_flags(self, dataset):
        legacy = rm_without_oracle(
            dataset.instance,
            self._sampling(use_subsim=True, use_batched_greedy=True),
        )
        policy = rm_without_oracle(
            dataset.instance,
            self._sampling(ExecutionPolicy.from_flags(use_subsim=True, use_batched_greedy=True)),
        )
        _same_result(legacy, policy)

    def test_rma_sharded_policy_matches_legacy_flags(self, dataset):
        legacy = rm_without_oracle(
            dataset.instance, self._sampling(use_subsim=True, n_jobs=2)
        )
        policy = rm_without_oracle(
            dataset.instance,
            self._sampling(ExecutionPolicy.from_flags(use_subsim=True, n_jobs=2)),
        )
        _same_result(legacy, policy)

    def test_one_batch_policy_matches_legacy_flags(self, dataset):
        legacy = one_batch_rm(
            dataset.instance, 256, self._sampling(use_subsim=True, use_batched_greedy=True)
        )
        policy = one_batch_rm(
            dataset.instance,
            256,
            self._sampling(ExecutionPolicy.from_flags(use_subsim=True, use_batched_greedy=True)),
        )
        _same_result(legacy, policy)

    @pytest.mark.parametrize("baseline", [ti_carm, ti_csrm])
    def test_ti_policy_matches_legacy_flags(self, dataset, baseline):
        base = dict(pilot_size=32, max_rr_sets_per_advertiser=128, seed=2)
        legacy = baseline(
            dataset.instance,
            _legacy_params(cls=TIParameters, **base, use_subsim=True, use_batched_greedy=True),
        )
        policy = baseline(
            dataset.instance,
            TIParameters(
                **base,
                policy=ExecutionPolicy.from_flags(use_subsim=True, use_batched_greedy=True),
            ),
        )
        _same_result(legacy, policy)

    def test_oracle_algorithms_policy_matches_legacy_flags(self, dataset, rr_oracle):
        batched = ExecutionPolicy.from_flags(use_batched_greedy=True)
        for solver in (rm_with_oracle, ca_greedy, cs_greedy):
            with pytest.warns(DeprecationWarning):
                legacy = solver(dataset.instance, rr_oracle, use_batched_greedy=True)
            policy = solver(dataset.instance, rr_oracle, policy=batched)
            _same_result(legacy, policy)
        # scalar default equals explicit seed policy
        _same_result(
            rm_with_oracle(dataset.instance, rr_oracle),
            rm_with_oracle(dataset.instance, rr_oracle, policy=ExecutionPolicy.seed()),
        )

    def test_greedy_single_advertiser_policy_matches_flag(self, dataset, rr_oracle):
        with pytest.warns(DeprecationWarning):
            legacy = greedy_single_advertiser(
                dataset.instance, rr_oracle, 0, use_batched_greedy=True
            )
        policy = greedy_single_advertiser(
            dataset.instance,
            rr_oracle,
            0,
            policy=ExecutionPolicy.from_flags(use_batched_greedy=True),
        )
        assert legacy == policy

    def test_run_algorithm_seed_policy_matches_default(self, dataset):
        default = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        seeded = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            policy=ExecutionPolicy.seed(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert default.evaluation.revenue == seeded.evaluation.revenue
        _same_result(default.solver_result, seeded.solver_result)

    def test_run_algorithm_fast_policy_matches_fast_flag(self, dataset):
        with pytest.warns(DeprecationWarning):
            legacy = run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=self._sampling(),
                fast=True,
                n_jobs=2,
                evaluation_rr_sets=1000,
                seed=3,
            )
        policy = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            policy=ExecutionPolicy.fast(n_jobs=2),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert legacy.evaluation.revenue == policy.evaluation.revenue
        _same_result(legacy.solver_result, policy.solver_result)

    def test_run_algorithm_oracle_setting_policy(self, dataset):
        with pytest.warns(DeprecationWarning):
            legacy = run_algorithm(
                "CS-Greedy",
                dataset.instance,
                mc_oracle_simulations=40,
                use_batched_mc=True,
                evaluation_rr_sets=1000,
                seed=3,
            )
        policy = run_algorithm(
            "CS-Greedy",
            dataset.instance,
            mc_oracle_simulations=40,
            policy=ExecutionPolicy.from_flags(use_batched_mc=True),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert legacy.evaluation.revenue == policy.evaluation.revenue
        _same_result(legacy.solver_result, policy.solver_result)


# --------------------------------------------------------------------------- #
# run_algorithm conflict handling
# --------------------------------------------------------------------------- #
class TestRunAlgorithmConflicts:
    def test_fast_with_explicit_false_mc_raises(self, dataset):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting engine flags"):
                run_algorithm("RMA", dataset.instance, fast=True, use_batched_mc=False)

    def test_fast_with_explicit_false_greedy_raises(self, dataset):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting engine flags"):
                run_algorithm(
                    "RMA", dataset.instance, fast=True, use_batched_greedy=False
                )

    def test_policy_plus_legacy_flags_raises(self, dataset):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                run_algorithm(
                    "RMA", dataset.instance, policy=ExecutionPolicy.seed(), n_jobs=2
                )

    def test_policy_never_silently_overrides_params_engines(self, dataset):
        legacy_params = _legacy_params(
            initial_rr_sets=64, max_rr_sets=128, seed=1, use_subsim=True
        )
        with pytest.raises(ValueError, match="one channel"):
            run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=legacy_params,
                policy=ExecutionPolicy.seed(),
            )
        conflicting = SamplingParameters(
            initial_rr_sets=64, max_rr_sets=128, seed=1, policy=ExecutionPolicy.fast(n_jobs=1)
        )
        with pytest.raises(ValueError, match="disagrees"):
            run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=conflicting,
                policy=ExecutionPolicy.seed(),
            )
        # the same policy on both levels is redundant, not contradictory
        run = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=conflicting,
            policy=ExecutionPolicy.fast(n_jobs=1),
            evaluation_rr_sets=500,
            seed=3,
        )
        assert run.evaluation.revenue > 0

    def test_fast_true_with_redundant_true_flag_still_runs(self, dataset):
        with pytest.warns(DeprecationWarning):
            run = run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=SamplingParameters(
                    initial_rr_sets=64, max_rr_sets=128, seed=1
                ),
                fast=True,
                n_jobs=1,
                use_batched_greedy=True,
                evaluation_rr_sets=500,
                seed=3,
            )
        assert run.evaluation.revenue > 0


# --------------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_monte_carlo_oracle_legacy_kwargs_warn(self, dataset):
        with pytest.warns(DeprecationWarning, match="use_batched_mc"):
            MonteCarloOracle(dataset.instance, num_simulations=10, use_batched_mc=True)
        with pytest.warns(DeprecationWarning, match="n_jobs"):
            MonteCarloOracle(dataset.instance, num_simulations=10, n_jobs=2)

    def test_monte_carlo_oracle_bad_n_jobs_keeps_solver_error(self, dataset):
        with pytest.raises(SolverError):
            MonteCarloOracle(dataset.instance, n_jobs=0)

    def test_monte_carlo_oracle_policy_matches_legacy(self, dataset):
        with pytest.warns(DeprecationWarning):
            legacy = MonteCarloOracle(
                dataset.instance, num_simulations=30, seed=5, use_batched_mc=True
            )
        policy = MonteCarloOracle(
            dataset.instance,
            num_simulations=30,
            seed=5,
            policy=ExecutionPolicy.from_flags(use_batched_mc=True),
        )
        assert legacy.revenue(0, [0, 1]) == policy.revenue(0, [0, 1])

    def test_explicit_false_flag_also_warns(self, dataset, rr_oracle):
        # The kwarg itself is deprecated, whatever its value.
        with pytest.warns(DeprecationWarning):
            rm_with_oracle(dataset.instance, rr_oracle, use_batched_greedy=False)

    def test_policy_path_is_warning_free(self, dataset, rr_oracle):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rm_with_oracle(
                dataset.instance, rr_oracle, policy=ExecutionPolicy.from_flags(use_batched_greedy=True)
            )
            rm_without_oracle(
                dataset.instance,
                SamplingParameters(
                    initial_rr_sets=64, max_rr_sets=128, seed=1, policy=ExecutionPolicy.seed()
                ),
            )


# --------------------------------------------------------------------------- #
# runtime & persistent pool
# --------------------------------------------------------------------------- #
class TestRuntime:
    def test_current_runtime_stacking(self):
        assert current_runtime() is None
        with Runtime() as outer:
            assert current_runtime() is outer
            with Runtime() as inner:
                assert current_runtime() is inner
            assert current_runtime() is outer
        assert current_runtime() is None

    def test_acquire_executor_prefers_explicit_then_ambient(self):
        ephemeral = acquire_executor(2)
        assert ephemeral.n_jobs == 2
        with Runtime() as ambient:
            bound = acquire_executor(2)
            assert bound._pool is ambient.pool
            other = Runtime()
            assert acquire_executor(2, other)._pool is other.pool
            other.close()

    def test_pool_spawned_at_most_once_across_collections(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        instance = dataset.instance

        def build(runtime=None):
            return UniformRRSampler(
                instance.graph,
                instance.all_edge_probabilities(),
                instance.cpes(),
                seed=11,
                policy=ExecutionPolicy.seed(n_jobs=2),
                runtime=runtime,
            )

        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            sampler = build(rt)
            persistent = sampler.generate_collection(200)
            for _ in range(3):  # doubling-style growth on one pool
                sampler.generate_collection(len(persistent), into=persistent)
            assert rt.pool_spawn_count == 1
            # the same payload was broadcast exactly once
            assert len(rt.pool._tokens) == 1

        ephemeral_sampler = build()
        ephemeral = ephemeral_sampler.generate_collection(200)
        for _ in range(3):
            ephemeral_sampler.generate_collection(len(ephemeral), into=ephemeral)
        assert np.array_equal(persistent.member_array, ephemeral.member_array)
        assert np.array_equal(persistent.tag_array, ephemeral.tag_array)

    def test_rma_doubling_rounds_share_one_pool(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            epsilon=0.05,
            initial_rr_sets=64,
            max_rr_sets=512,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            result = rm_without_oracle(dataset.instance, params, runtime=rt)
            assert result.metadata["iterations"] >= 2  # the pool was needed repeatedly
            assert rt.pool_spawn_count == 1
        serial_pooling = rm_without_oracle(dataset.instance, params)  # per-call runtime
        _same_result(result, serial_pooling)

    def test_ambient_runtime_is_picked_up_without_threading(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            initial_rr_sets=128,
            max_rr_sets=256,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            result = rm_without_oracle(dataset.instance, params)  # no runtime= passed
            assert rt.pool_spawn_count == 1
        _same_result(result, rm_without_oracle(dataset.instance, params))

    def test_sharded_mc_spread_persistent_matches_ephemeral(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        instance = dataset.instance
        seeds = np.arange(8, dtype=np.int64)
        probabilities = instance.edge_probabilities(0)
        ephemeral = engine_monte_carlo_spread(
            instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
        )
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            persistent = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2, runtime=rt
            )
            again = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
            )  # ambient pickup
            assert rt.pool_spawn_count == 1
        assert persistent == ephemeral == again

    def test_process_cap_of_one_keeps_pool_down(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "1")
        instance = dataset.instance
        seeds = np.arange(8, dtype=np.int64)
        probabilities = instance.edge_probabilities(0)
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            capped = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2, runtime=rt
            )
            assert rt.pool_spawn_count == 0  # inline execution, same shard layout
        monkeypatch.delenv(MAX_JOBS_ENV)
        uncapped = engine_monte_carlo_spread(
            instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
        )
        assert capped == uncapped

    def test_runtime_close_allows_respawn(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        rt = Runtime(ExecutionPolicy.seed(n_jobs=2))
        executor = rt.sharded_executor(2)
        assert executor.run(_add_task, 10, [1, 2]) == [11, 12]
        assert rt.pool_spawn_count == 1
        rt.close()
        assert rt.pool.processes == 0
        assert executor.run(_add_task, 10, [3, 4]) == [13, 14]
        assert rt.pool_spawn_count == 2
        rt.close()

    def test_runtime_presence_never_changes_results(self, dataset, monkeypatch):
        """Entering a Runtime must not upgrade n_jobs=None calls to the
        runtime policy's n_jobs — MonteCarloOracle deliberately keeps
        queries below MIN_SHARDED_SIMULATIONS serial, runtime or not."""
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        sharded_policy = ExecutionPolicy.from_flags(use_batched_mc=True, n_jobs=2)
        sims = 60  # < MIN_SHARDED_SIMULATIONS
        baseline = MonteCarloOracle(
            dataset.instance, num_simulations=sims, seed=5, policy=sharded_policy
        ).revenue(0, [0, 1, 2])
        with Runtime(sharded_policy) as rt:
            inside = MonteCarloOracle(
                dataset.instance, num_simulations=sims, seed=5, policy=sharded_policy
            ).revenue(0, [0, 1, 2])
            assert rt.pool_spawn_count == 0  # small query stayed serial
        assert inside == baseline

    def test_explicit_use_batched_false_beats_policy(self, dataset):
        from repro.diffusion.simulation import monte_carlo_spread

        instance = dataset.instance
        probabilities = instance.edge_probabilities(0)
        sequential = monte_carlo_spread(
            instance.graph, probabilities, [0, 1], num_simulations=40, rng=9
        )
        pinned = monte_carlo_spread(
            instance.graph,
            probabilities,
            [0, 1],
            num_simulations=40,
            rng=9,
            use_batched=False,
            policy=ExecutionPolicy.from_flags(use_batched_mc=True),
        )
        assert pinned == sequential  # bit-identical: the legacy engine ran

    def test_run_algorithm_reuses_ambient_runtime(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            initial_rr_sets=128,
            max_rr_sets=256,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            run = run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=params,
                evaluation_rr_sets=500,
                seed=3,
            )
            assert rt.pool_spawn_count == 1
        assert run.evaluation.revenue > 0

    def test_reentrant_with_blocks_keep_pool_alive(self, monkeypatch):
        """One Runtime entered twice (nested) closes only on the last exit."""
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        rt = Runtime(ExecutionPolicy.seed(n_jobs=2))
        with rt:
            assert rt.sharded_executor(2).run(_add_task, 1, [1, 2]) == [2, 3]
            with rt:  # re-entrant: same object on the ambient stack twice
                assert current_runtime() is rt
                assert rt.sharded_executor(2).run(_add_task, 1, [3]) == [4]
            # Inner exit must not tear down the pool of the outer block.
            assert current_runtime() is rt
            assert rt.pool.processes == 2
            assert rt.pool_spawn_count == 1
        assert current_runtime() is None
        assert rt.pool.processes == 0  # the outermost exit closed it

    def test_close_then_respawn_increments_spawn_count(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            executor = rt.sharded_executor(2)
            assert executor.run(_add_task, 0, [1, 2]) == [1, 2]
            assert rt.pool_spawn_count == 1
            rt.close()  # mid-block close: the runtime stays usable
            assert rt.pool.processes == 0
            assert executor.run(_add_task, 0, [5, 6]) == [5, 6]
            assert rt.pool_spawn_count == 2
            assert rt.recovery_stats.events == 0  # deliberate closes aren't failures

    def test_acquire_executor_falls_back_to_ephemeral_after_exit(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            assert acquire_executor(2)._pool is rt.pool
        # After the ambient runtime exits, callers get ephemeral executors
        # that still produce the same results (no stale pool reference).
        fallback = acquire_executor(2)
        assert fallback._pool is None
        assert fallback.run(_add_task, 10, [1, 2]) == [11, 12]
