"""Policy & runtime equivalence tier.

Pins the contracts of the :mod:`repro.runtime` layer after the default
flip to :meth:`ExecutionPolicy.fast`:

1. **Policy algebra** — presets, field validation, the derived
   ``rng_compat`` guarantee, and :func:`resolve_policy` (the single place
   "no policy" is defined to mean ``fast``).
2. **Default resolution** — every entry point resolves ``policy=None`` to
   the fast engines; ``ExecutionPolicy.seed()`` stays available as the
   explicit bit-reproducible escape hatch.
3. **Pool reuse** — a :class:`~repro.runtime.Runtime` block spawns its
   worker pool at most once across all of RMA's doubling rounds, and the
   persistent pool is bit-identical to per-call pools.

All seeds are fixed; the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.oracle import MonteCarloOracle, RRSetOracle
from repro.baselines.ti_carm import ti_carm
from repro.baselines.ti_csrm import ti_csrm
from repro.baselines.ti_common import TIParameters
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import (
    SamplingParameters,
    one_batch_rm,
    rm_without_oracle,
)
from repro.datasets.registry import build_dataset
from repro.diffusion.engine import monte_carlo_spread as engine_monte_carlo_spread
from repro.exceptions import PolicyError
from repro.experiments.runner import run_algorithm
from repro.parallel import MAX_JOBS_ENV
from repro.rrsets.generator import RRSetGenerator, SubsimRRGenerator
from repro.rrsets.uniform import UniformRRSampler
from repro.runtime import (
    ExecutionPolicy,
    Runtime,
    acquire_executor,
    current_runtime,
    resolve_policy,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        "lastfm_like", num_advertisers=3, scale=0.15, seed=1, singleton_rr_sets=200
    )


@pytest.fixture(scope="module")
def rr_oracle(dataset):
    sampler = UniformRRSampler(
        dataset.instance.graph,
        dataset.instance.all_edge_probabilities(),
        dataset.instance.cpes(),
        seed=7,
        policy=ExecutionPolicy.seed(),
    )
    return RRSetOracle(sampler.generate_collection(800), dataset.instance.gamma)


def _add_task(payload, shard):
    """Module-level (picklable) toy task for executor-level tests."""
    return payload + shard


def _same_result(a, b, num_advertisers=3):
    assert a.revenue == b.revenue
    assert all(a.allocation.seeds(i) == b.allocation.seeds(i) for i in range(num_advertisers))


# --------------------------------------------------------------------------- #
# policy algebra
# --------------------------------------------------------------------------- #
class TestExecutionPolicy:
    def test_seed_preset(self):
        policy = ExecutionPolicy.seed()
        assert policy.rr_engine == "legacy"
        assert policy.mc_engine == "legacy"
        assert policy.greedy_engine == "scalar"
        assert policy.n_jobs is None
        assert policy.rng_compat is True

    def test_fast_preset(self):
        policy = ExecutionPolicy.fast(n_jobs=4)
        assert policy.rr_engine == "subsim"
        assert policy.mc_engine == "batched"
        assert policy.greedy_engine == "batched"
        assert policy.n_jobs == 4
        assert policy.rng_compat is False

    def test_preset_lookup(self):
        assert ExecutionPolicy.preset("seed") == ExecutionPolicy.seed()
        assert ExecutionPolicy.preset("fast") == ExecutionPolicy.fast()
        assert ExecutionPolicy.preset("fast", n_jobs=2).n_jobs == 2
        with pytest.raises(PolicyError):
            ExecutionPolicy.preset("warp")

    def test_resolve_policy_defaults_to_fast(self):
        assert resolve_policy(None) == ExecutionPolicy.fast()
        pinned = ExecutionPolicy.seed()
        assert resolve_policy(pinned) is pinned

    def test_fast_default_uses_all_cores(self):
        assert ExecutionPolicy.fast().n_jobs == -1

    def test_field_validation(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy(rr_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(mc_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(greedy_engine="warp")
        with pytest.raises(PolicyError):
            ExecutionPolicy(n_jobs=0)
        with pytest.raises(PolicyError):
            ExecutionPolicy(mc_batch_size=0)

    def test_rng_compat_is_derived_and_validated(self):
        assert ExecutionPolicy(n_jobs=1).rng_compat is True
        assert ExecutionPolicy(n_jobs=2).rng_compat is False
        assert ExecutionPolicy(rr_engine="subsim").rng_compat is False
        # The batched greedy engine is bit-identical, so it keeps the guarantee.
        assert ExecutionPolicy(greedy_engine="batched").rng_compat is True
        with pytest.raises(PolicyError, match="rng_compat"):
            ExecutionPolicy(mc_engine="batched", rng_compat=True)

    def test_evolve_rederives_rng_compat(self):
        seed = ExecutionPolicy.seed()
        evolved = seed.evolve(rr_engine="subsim")
        assert evolved.rr_engine == "subsim" and evolved.rng_compat is False
        back = evolved.evolve(rr_engine="legacy")
        assert back.rng_compat is True

    def test_describe_names_presets(self):
        assert ExecutionPolicy.seed().describe().startswith("seed:")
        assert ExecutionPolicy.fast().describe().startswith("fast:")
        assert "n_jobs=serial" in ExecutionPolicy.seed().describe()

    def test_maintenance_knob(self):
        assert ExecutionPolicy().maintenance == "pool"
        assert ExecutionPolicy(maintenance="inline").maintenance == "inline"
        with pytest.raises(PolicyError, match="maintenance"):
            ExecutionPolicy(maintenance="warp")

    def test_maintenance_never_participates_in_rng_compat(self):
        # Store slots own their seed substreams, so the knob is result-neutral.
        assert ExecutionPolicy(maintenance="inline").rng_compat is True
        assert ExecutionPolicy.seed().evolve(maintenance="inline").rng_compat is True

    def test_describe_mentions_non_default_maintenance_only(self):
        assert "maintenance" not in ExecutionPolicy().describe()
        assert "maintenance=inline" in ExecutionPolicy(maintenance="inline").describe()


# --------------------------------------------------------------------------- #
# parameter objects
# --------------------------------------------------------------------------- #
class TestParameterObjects:
    def test_sampling_defaults_resolve_to_fast(self):
        assert SamplingParameters().resolved_policy() == ExecutionPolicy.fast()

    def test_sampling_policy_field_wins(self):
        policy = ExecutionPolicy.seed(n_jobs=2)
        assert SamplingParameters(policy=policy).resolved_policy() is policy

    def test_ti_defaults_resolve_to_fast(self):
        assert TIParameters().resolved_policy() == ExecutionPolicy.fast()

    def test_ti_policy_field_wins(self):
        policy = ExecutionPolicy.seed()
        assert TIParameters(policy=policy).resolved_policy() is policy

    def test_legacy_fields_are_gone(self):
        with pytest.raises(TypeError):
            SamplingParameters(use_subsim=True)
        with pytest.raises(TypeError):
            SamplingParameters(n_jobs=2)
        with pytest.raises(TypeError):
            TIParameters(use_batched_greedy=True)


# --------------------------------------------------------------------------- #
# default resolution across entry points
# --------------------------------------------------------------------------- #
class TestDefaultResolution:
    @staticmethod
    def _sampling(policy=None):
        return SamplingParameters(
            initial_rr_sets=128, max_rr_sets=256, seed=1, policy=policy
        )

    def test_rma_no_args_matches_explicit_fast(self, dataset):
        _same_result(
            rm_without_oracle(dataset.instance, self._sampling()),
            rm_without_oracle(dataset.instance, self._sampling(ExecutionPolicy.fast())),
        )

    def test_one_batch_no_args_matches_explicit_fast(self, dataset):
        _same_result(
            one_batch_rm(dataset.instance, 256, self._sampling()),
            one_batch_rm(dataset.instance, 256, self._sampling(ExecutionPolicy.fast())),
        )

    @pytest.mark.parametrize("baseline", [ti_carm, ti_csrm])
    def test_ti_no_args_matches_explicit_fast(self, dataset, baseline):
        base = dict(pilot_size=32, max_rr_sets_per_advertiser=128, seed=2)
        _same_result(
            baseline(dataset.instance, TIParameters(**base)),
            baseline(dataset.instance, TIParameters(**base, policy=ExecutionPolicy.fast())),
        )

    def test_oracle_solver_no_args_matches_explicit_fast(self, dataset, rr_oracle):
        _same_result(
            rm_with_oracle(dataset.instance, rr_oracle),
            rm_with_oracle(dataset.instance, rr_oracle, policy=ExecutionPolicy.fast()),
        )

    def test_uniform_sampler_defaults_to_subsim(self, dataset):
        instance = dataset.instance
        sampler = UniformRRSampler(
            instance.graph, instance.all_edge_probabilities(), instance.cpes(), seed=3
        )
        assert sampler._generator_cls is SubsimRRGenerator
        pinned = UniformRRSampler(
            instance.graph,
            instance.all_edge_probabilities(),
            instance.cpes(),
            seed=3,
            policy=ExecutionPolicy.seed(),
        )
        assert pinned._generator_cls is RRSetGenerator

    def test_monte_carlo_oracle_defaults_to_batched(self, dataset):
        oracle = MonteCarloOracle(dataset.instance, num_simulations=10, seed=5)
        assert oracle._policy == ExecutionPolicy.fast()

    def test_run_algorithm_no_args_matches_explicit_fast(self, dataset):
        default = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        fast = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            policy=ExecutionPolicy.fast(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert default.evaluation.revenue == fast.evaluation.revenue
        _same_result(default.solver_result, fast.solver_result)

    def test_run_algorithm_seed_policy_is_the_escape_hatch(self, dataset):
        seeded = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            policy=ExecutionPolicy.seed(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        again = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=self._sampling(),
            policy=ExecutionPolicy.seed(),
            evaluation_rr_sets=1000,
            seed=3,
        )
        assert seeded.evaluation.revenue == again.evaluation.revenue
        _same_result(seeded.solver_result, again.solver_result)


# --------------------------------------------------------------------------- #
# run_algorithm conflict handling
# --------------------------------------------------------------------------- #
class TestRunAlgorithmConflicts:
    def test_policy_never_silently_overrides_params_policy(self, dataset):
        conflicting = SamplingParameters(
            initial_rr_sets=64, max_rr_sets=128, seed=1, policy=ExecutionPolicy.fast(n_jobs=1)
        )
        with pytest.raises(ValueError, match="disagrees"):
            run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=conflicting,
                policy=ExecutionPolicy.seed(),
            )
        # the same policy on both levels is redundant, not contradictory
        run = run_algorithm(
            "RMA",
            dataset.instance,
            sampling_params=conflicting,
            policy=ExecutionPolicy.fast(n_jobs=1),
            evaluation_rr_sets=500,
            seed=3,
        )
        assert run.evaluation.revenue > 0

    def test_legacy_kwargs_raise_type_error(self, dataset):
        with pytest.raises(TypeError):
            run_algorithm("RMA", dataset.instance, fast=True)
        with pytest.raises(TypeError):
            run_algorithm("RMA", dataset.instance, n_jobs=2)
        with pytest.raises(TypeError):
            run_algorithm("RMA", dataset.instance, use_batched_mc=True)


# --------------------------------------------------------------------------- #
# runtime & persistent pool
# --------------------------------------------------------------------------- #
class TestRuntime:
    def test_current_runtime_stacking(self):
        assert current_runtime() is None
        with Runtime() as outer:
            assert current_runtime() is outer
            with Runtime() as inner:
                assert current_runtime() is inner
            assert current_runtime() is outer
        assert current_runtime() is None

    def test_runtime_default_policy_is_fast(self):
        rt = Runtime()
        assert rt.policy == ExecutionPolicy.fast()
        rt.close()

    def test_acquire_executor_prefers_explicit_then_ambient(self):
        ephemeral = acquire_executor(2)
        assert ephemeral.n_jobs == 2
        with Runtime() as ambient:
            bound = acquire_executor(2)
            assert bound._pool is ambient.pool
            other = Runtime()
            assert acquire_executor(2, other)._pool is other.pool
            other.close()

    def test_pool_spawned_at_most_once_across_collections(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        instance = dataset.instance

        def build(runtime=None):
            return UniformRRSampler(
                instance.graph,
                instance.all_edge_probabilities(),
                instance.cpes(),
                seed=11,
                policy=ExecutionPolicy.seed(n_jobs=2),
                runtime=runtime,
            )

        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            sampler = build(rt)
            persistent = sampler.generate_collection(200)
            for _ in range(3):  # doubling-style growth on one pool
                sampler.generate_collection(len(persistent), into=persistent)
            assert rt.pool_spawn_count == 1
            # the same payload was broadcast exactly once
            assert len(rt.pool._tokens) == 1

        ephemeral_sampler = build()
        ephemeral = ephemeral_sampler.generate_collection(200)
        for _ in range(3):
            ephemeral_sampler.generate_collection(len(ephemeral), into=ephemeral)
        assert np.array_equal(persistent.member_array, ephemeral.member_array)
        assert np.array_equal(persistent.tag_array, ephemeral.tag_array)

    def test_rma_doubling_rounds_share_one_pool(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            epsilon=0.05,
            initial_rr_sets=64,
            max_rr_sets=512,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            result = rm_without_oracle(dataset.instance, params, runtime=rt)
            assert result.metadata["iterations"] >= 2  # the pool was needed repeatedly
            assert rt.pool_spawn_count == 1
        serial_pooling = rm_without_oracle(dataset.instance, params)  # per-call runtime
        _same_result(result, serial_pooling)

    def test_ambient_runtime_is_picked_up_without_threading(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            initial_rr_sets=128,
            max_rr_sets=256,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            result = rm_without_oracle(dataset.instance, params)  # no runtime= passed
            assert rt.pool_spawn_count == 1
        _same_result(result, rm_without_oracle(dataset.instance, params))

    def test_sharded_mc_spread_persistent_matches_ephemeral(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        instance = dataset.instance
        seeds = np.arange(8, dtype=np.int64)
        probabilities = instance.edge_probabilities(0)
        ephemeral = engine_monte_carlo_spread(
            instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
        )
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            persistent = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2, runtime=rt
            )
            again = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
            )  # ambient pickup
            assert rt.pool_spawn_count == 1
        assert persistent == ephemeral == again

    def test_process_cap_of_one_keeps_pool_down(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "1")
        instance = dataset.instance
        seeds = np.arange(8, dtype=np.int64)
        probabilities = instance.edge_probabilities(0)
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            capped = engine_monte_carlo_spread(
                instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2, runtime=rt
            )
            assert rt.pool_spawn_count == 0  # inline execution, same shard layout
        monkeypatch.delenv(MAX_JOBS_ENV)
        uncapped = engine_monte_carlo_spread(
            instance.graph, probabilities, seeds, 64, rng=9, n_jobs=2
        )
        assert capped == uncapped

    def test_runtime_close_allows_respawn(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        rt = Runtime(ExecutionPolicy.seed(n_jobs=2))
        executor = rt.sharded_executor(2)
        assert executor.run(_add_task, 10, [1, 2]) == [11, 12]
        assert rt.pool_spawn_count == 1
        rt.close()
        assert rt.pool.processes == 0
        assert executor.run(_add_task, 10, [3, 4]) == [13, 14]
        assert rt.pool_spawn_count == 2
        rt.close()

    def test_runtime_presence_never_changes_results(self, dataset, monkeypatch):
        """Entering a Runtime must not upgrade n_jobs=None calls to the
        runtime policy's n_jobs — MonteCarloOracle deliberately keeps
        queries below MIN_SHARDED_SIMULATIONS serial, runtime or not."""
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        sharded_policy = ExecutionPolicy(mc_engine="batched", n_jobs=2)
        sims = 60  # < MIN_SHARDED_SIMULATIONS
        baseline = MonteCarloOracle(
            dataset.instance, num_simulations=sims, seed=5, policy=sharded_policy
        ).revenue(0, [0, 1, 2])
        with Runtime(sharded_policy) as rt:
            inside = MonteCarloOracle(
                dataset.instance, num_simulations=sims, seed=5, policy=sharded_policy
            ).revenue(0, [0, 1, 2])
            assert rt.pool_spawn_count == 0  # small query stayed serial
        assert inside == baseline

    def test_explicit_use_batched_false_beats_policy(self, dataset):
        from repro.diffusion.simulation import monte_carlo_spread

        instance = dataset.instance
        probabilities = instance.edge_probabilities(0)
        sequential = monte_carlo_spread(
            instance.graph, probabilities, [0, 1], num_simulations=40, rng=9
        )
        pinned = monte_carlo_spread(
            instance.graph,
            probabilities,
            [0, 1],
            num_simulations=40,
            rng=9,
            use_batched=False,
            policy=ExecutionPolicy(mc_engine="batched"),
        )
        assert pinned == sequential  # bit-identical: the legacy engine ran

    def test_run_algorithm_reuses_ambient_runtime(self, dataset, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        params = SamplingParameters(
            initial_rr_sets=128,
            max_rr_sets=256,
            seed=1,
            policy=ExecutionPolicy.seed(n_jobs=2),
        )
        with Runtime(params.policy) as rt:
            run = run_algorithm(
                "RMA",
                dataset.instance,
                sampling_params=params,
                evaluation_rr_sets=500,
                seed=3,
            )
            assert rt.pool_spawn_count == 1
        assert run.evaluation.revenue > 0

    def test_reentrant_with_blocks_keep_pool_alive(self, monkeypatch):
        """One Runtime entered twice (nested) closes only on the last exit."""
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        rt = Runtime(ExecutionPolicy.seed(n_jobs=2))
        with rt:
            assert rt.sharded_executor(2).run(_add_task, 1, [1, 2]) == [2, 3]
            with rt:  # re-entrant: same object on the ambient stack twice
                assert current_runtime() is rt
                assert rt.sharded_executor(2).run(_add_task, 1, [3]) == [4]
            # Inner exit must not tear down the pool of the outer block.
            assert current_runtime() is rt
            assert rt.pool.processes == 2
            assert rt.pool_spawn_count == 1
        assert current_runtime() is None
        assert rt.pool.processes == 0  # the outermost exit closed it

    def test_close_then_respawn_increments_spawn_count(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            executor = rt.sharded_executor(2)
            assert executor.run(_add_task, 0, [1, 2]) == [1, 2]
            assert rt.pool_spawn_count == 1
            rt.close()  # mid-block close: the runtime stays usable
            assert rt.pool.processes == 0
            assert executor.run(_add_task, 0, [5, 6]) == [5, 6]
            assert rt.pool_spawn_count == 2
            assert rt.recovery_stats.events == 0  # deliberate closes aren't failures

    def test_acquire_executor_falls_back_to_ephemeral_after_exit(self, monkeypatch):
        monkeypatch.setenv(MAX_JOBS_ENV, "2")
        with Runtime(ExecutionPolicy.seed(n_jobs=2)) as rt:
            assert acquire_executor(2)._pool is rt.pool
        # After the ambient runtime exits, callers get ephemeral executors
        # that still produce the same results (no stale pool reference).
        fallback = acquire_executor(2)
        assert fallback._pool is None
        assert fallback.run(_add_task, 10, [1, 2]) == [11, 12]
