"""Additional validation of SeekUB against brute force in the sampling space.

The SeekUB bound is an upper bound on ``π̃(O⃗, R1)`` — the optimum of the
*sampling-space* problem with relaxed budgets — so these tests brute-force
that optimum directly over the RR-set oracle and check the bound dominates
it across several random instances and threshold-search outcomes.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.core.oracle_solver import approximation_ratio, rm_with_oracle
from repro.core.seek_ub import seek_upper_bound
from repro.diffusion.models import IndependentCascadeModel
from repro.graph.builders import from_edge_list
from repro.rrsets.uniform import UniformRRSampler


def sampling_space_optimum(instance, oracle, budgets):
    """Brute-force optimum of the RM problem under the oracle's revenue function."""
    nodes = list(range(instance.num_nodes))
    h = instance.num_advertisers
    best = 0.0
    for assignment in itertools.product(range(h + 1), repeat=len(nodes)):
        seed_sets = {i: set() for i in range(h)}
        for node, owner in zip(nodes, assignment):
            if owner < h:
                seed_sets[owner].add(node)
        feasible = True
        total = 0.0
        for advertiser, seeds in seed_sets.items():
            revenue = oracle.revenue(advertiser, seeds) if seeds else 0.0
            cost = instance.cost_of_set(advertiser, seeds)
            if cost + revenue > budgets[advertiser] + 1e-9:
                feasible = False
                break
            total += revenue
        if feasible and total > best:
            best = total
    return best


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_seekub_dominates_sampling_space_optimum(seed):
    rng = np.random.default_rng(seed)
    graph = from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)], num_nodes=4)
    probs = rng.uniform(0.2, 0.8, graph.num_edges)
    model = IndependentCascadeModel(graph, probs)
    advertisers = [
        Advertiser(budget=float(rng.uniform(3, 7)), cpe=1.0),
        Advertiser(budget=float(rng.uniform(3, 7)), cpe=1.5),
    ]
    costs = rng.uniform(0.5, 1.5, size=(2, 4))
    instance = RMInstance(graph, model, advertisers, costs)

    sampler = UniformRRSampler(
        graph, instance.all_edge_probabilities(), instance.cpes(), seed=seed
    )
    oracle = RRSetOracle(sampler.generate_collection(300), instance.gamma)

    tau = 0.1
    lam = approximation_ratio(instance.num_advertisers, tau)
    result = rm_with_oracle(instance, oracle, tau=tau)
    bound = seek_upper_bound(
        result.revenue,
        result.search,
        instance.num_advertisers,
        lam,
        revenue_of=oracle.total_revenue,
    )
    optimum = sampling_space_optimum(instance, oracle, instance.budgets())
    assert bound >= optimum - 1e-6
    # And the solver itself respects the lambda guarantee in the sampling space.
    assert result.revenue >= lam * optimum - 1e-6
