"""Behavioural suite for the allocation server (``repro.serve``).

Covers the service acceptance contract in-process (the CLI/transport layer
has its own suite in ``test_serve_cli.py``):

* (a) allocation replies are **byte-identical** with and without an
  injected worker crash mid-request (degrade-mode recovery + slot purity);
* (b) a deadline-exceeding request returns a structured
  ``deadline-exceeded`` error within 2× its deadline and the server keeps
  serving afterwards;
* (c) admission beyond ``queue_depth`` sheds with a structured
  ``overloaded`` reply instead of growing memory;
* (d) draining finishes in-flight requests, rejects new ones with
  ``draining`` and reaches ``stopped``;
* plus protocol validation, coalescing, refresh/epoch bookkeeping and the
  recovery envelope.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import RRSetOracle
from repro.core.oracle_solver import rm_with_oracle
from repro.diffusion.models import IndependentCascadeModel
from repro.exceptions import PolicyError, ServiceError
from repro.graph.generators import preferential_attachment_digraph
from repro.parallel import FailurePolicy, FaultInjector
from repro.rrsets.estimators import estimate_advertiser_revenue
from repro.runtime import ExecutionPolicy
from repro.serve import AllocationServer, ServicePolicy
from repro.serve.protocol import encode_reply

#: Serial in-process policy — deterministic and pool-free for the protocol
#: and lifecycle tests.
INLINE = ExecutionPolicy(maintenance="inline")

#: Pool-backed policy with fast degrade recovery for the fault tests.
POOLED = ExecutionPolicy(n_jobs=2, failure=FailurePolicy(retry_backoff_s=0.01))


def build_instance(num_nodes: int = 40):
    graph = preferential_attachment_digraph(num_nodes, out_degree=3, seed=2)
    model = IndependentCascadeModel(graph, probability=0.2)
    advertisers = [
        Advertiser(budget=6.0, cpe=1.0, name="a0"),
        Advertiser(budget=5.0, cpe=1.5, name="a1"),
    ]
    costs = np.full((2, graph.num_nodes), 1.0)
    return RMInstance(graph, model, advertisers, costs)


@pytest.fixture(scope="module")
def instance():
    return build_instance()


@pytest.fixture()
def server(instance):
    with AllocationServer(instance, policy=INLINE, rr_sets=300, seed=11) as srv:
        yield srv


def edge_update(instance, edge_id=0, probability=0.05):
    graph = instance.graph
    return {
        "kind": "update_probability",
        "source": int(graph.sources[edge_id]),
        "target": int(graph.targets[edge_id]),
        "probability": probability,
    }


# --------------------------------------------------------------------------- #
# service policy validation
# --------------------------------------------------------------------------- #
class TestServicePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"queue_depth": 0},
            {"max_inflight": 0},
            {"drain_grace_s": 0.0},
            {"request_retries": -1},
            {"checkpoint_every": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            ServicePolicy(**kwargs)

    def test_describe_mentions_every_knob(self):
        text = ServicePolicy(deadline_s=2.0, queue_depth=8).describe()
        for token in ("deadline=2s", "queue_depth=8", "max_inflight", "drain_grace"):
            assert token in text


# --------------------------------------------------------------------------- #
# protocol basics and the reply envelope
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_ping_envelope(self, server):
        reply = server.request({"op": "ping", "id": "abc"})
        assert reply["ok"] is True
        assert reply["id"] == "abc"
        assert reply["state"] == "serving"
        assert reply["epoch"] == 0
        assert reply["result"] == {"pong": True, "slots": 300}
        assert set(reply["recovery"]) == {
            "worker_crashes",
            "shard_timeouts",
            "pool_respawns",
            "shards_rerun",
            "serial_fallbacks",
        }

    @pytest.mark.parametrize(
        "request_obj",
        [
            {"id": 1},  # missing op
            {"op": "frobnicate"},  # unknown op
            {"op": "ping", "id": [1, 2]},  # non-scalar id
            {"op": "ping", "deadline_s": -2},  # invalid deadline
            {"op": "ping", "deadline_s": "soon"},
        ],
    )
    def test_bad_envelope_rejected(self, server, request_obj):
        reply = server.request(request_obj)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"

    def test_submit_text_parses_lines(self, server):
        reply = server.submit_text('{"op": "ping", "id": 9}').wait(30)
        assert reply["ok"] is True and reply["id"] == 9

    def test_submit_text_rejects_garbage_with_reply(self, server):
        reply = server.submit_text("{not json").wait(30)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"

    @pytest.mark.parametrize(
        "delta",
        [
            {"kind": "warp_edge"},
            {"kind": "add_edge", "source": 0},  # missing fields
            {"kind": "remove_node"},
            "not-an-object",
        ],
    )
    def test_bad_delta_rejected(self, server, delta):
        reply = server.request({"op": "refresh", "deltas": [delta]})
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"

    def test_op_parameter_validation(self, server, instance):
        n = instance.num_nodes
        cases = [
            {"op": "spread", "advertiser": 99, "seeds": [0]},
            {"op": "spread", "advertiser": 0, "seeds": [n + 5]},
            {"op": "spread", "advertiser": "zero", "seeds": [0]},
            {"op": "allocate", "tau": 2.0},
            {"op": "allocate", "budget_scale": -1},
            {"op": "burn", "seconds": -0.5},
        ]
        for request in cases:
            reply = server.request(request)
            assert reply["ok"] is False, request
            assert reply["error"]["code"] == "bad-request", request


# --------------------------------------------------------------------------- #
# query results match the direct engine calls
# --------------------------------------------------------------------------- #
class TestQueries:
    def test_allocate_matches_direct_solver(self, server, instance):
        reply = server.request({"op": "allocate", "tau": 0.1})
        assert reply["ok"] is True
        oracle = RRSetOracle(server.store.collection, server.store.gamma)
        direct = rm_with_oracle(instance, oracle, tau=0.1, policy=INLINE)
        expected = {
            str(advertiser): sorted(int(node) for node in seeds)
            for advertiser, seeds in direct.allocation.items()
        }
        assert reply["result"]["allocation"] == expected
        assert reply["result"]["revenue"] == pytest.approx(direct.revenue)

    def test_spread_matches_estimator(self, server):
        store = server.store
        reply = server.request(
            {"op": "spread", "advertiser": 1, "seeds": [0, 3, 5]}
        )
        expected = estimate_advertiser_revenue(
            store.collection, 1, [0, 3, 5], store.gamma
        )
        assert reply["result"]["revenue"] == pytest.approx(expected)
        assert reply["result"]["rr_sets"] == len(store.collection)

    def test_refresh_advances_epoch_and_reports(self, server, instance):
        reply = server.request(
            {"op": "refresh", "deltas": [edge_update(instance)]}
        )
        assert reply["ok"] is True
        assert reply["epoch"] == 1
        result = reply["result"]
        assert result["total"] == 300
        assert result["invalidated"] == result["redrawn"]
        assert result["kept"] == result["total"] - result["redrawn"]
        assert result["reason"] in ("clean", "localized")
        # Subsequent queries serve the refreshed store at the new epoch.
        assert server.request({"op": "ping"})["epoch"] == 1

    def test_stats_counters(self, server):
        server.request({"op": "ping"})
        reply = server.request({"op": "stats"})
        result = reply["result"]
        assert result["slots"] == 300
        assert result["requests"]["accepted"] >= 2
        assert result["service"]["queue_depth"] == 64
        assert result["checkpoint"] == {"enabled": False}
        assert result["pool_spawns"] == 0  # inline policy never spawned


# --------------------------------------------------------------------------- #
# (b) deadlines: structured timeout within 2x, server survives
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_burn_deadline_within_2x_and_server_keeps_serving(self, server):
        deadline = 0.2
        start = time.monotonic()
        reply = server.request(
            {"op": "burn", "seconds": 5.0, "deadline_s": deadline}
        )
        elapsed = time.monotonic() - start
        assert reply["ok"] is False
        assert reply["error"]["code"] == "deadline-exceeded"
        assert elapsed < 2 * deadline
        # The server is still healthy afterwards.
        assert server.request({"op": "ping"})["ok"] is True
        assert server.state == "serving"

    def test_queueing_time_counts_against_deadline(self, server):
        # A long burn occupies dispatch; the deadline-bearing request
        # expires in the queue and is answered without ever running.
        slow = server.submit({"op": "burn", "seconds": 0.5})
        fast = server.submit({"op": "ping", "deadline_s": 0.05})
        reply = fast.wait(30)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "deadline-exceeded"
        assert slow.wait(30)["ok"] is True

    def test_sharded_deadline_through_supervision(self, instance):
        # The deadline must cut through *pool* work: a wildcard delay fault
        # stalls the redraw shard past the deadline, the per-request
        # fail-fast override surfaces it, and the server answers a
        # structured timeout — then finishes the maintenance out-of-band
        # and keeps serving the (fully applied) batch.
        deadline = 0.6
        with AllocationServer(
            instance, policy=POOLED, rr_sets=300, seed=11
        ) as srv:
            # Faults arm at pool spawn: release the startup pool so the
            # refresh below spawns a fresh, fault-armed one.
            srv.runtime.close()
            injector = FaultInjector()
            injector.delay_shard(None, seconds=deadline + 2.0, times=1)
            start = time.monotonic()
            with injector:
                reply = srv.request(
                    {
                        "op": "refresh",
                        "deadline_s": deadline,
                        "deltas": [edge_update(instance)],
                    },
                    timeout=60,
                )
            elapsed = time.monotonic() - start
            assert reply["ok"] is False
            assert reply["error"]["code"] == "deadline-exceeded"
            assert elapsed < 2 * deadline
            follow_up = srv.request({"op": "ping"}, timeout=60)
            assert follow_up["ok"] is True
            assert follow_up["epoch"] == 1  # the journaled batch stayed applied


# --------------------------------------------------------------------------- #
# (c) bounded admission: overload sheds, memory stays bounded
# --------------------------------------------------------------------------- #
class TestOverload:
    def test_overload_returns_structured_error(self, instance):
        service = ServicePolicy(queue_depth=2, max_inflight=1)
        with AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, service=service
        ) as srv:
            # Occupy dispatch so the queue can actually fill.
            blocker = srv.submit({"op": "burn", "seconds": 0.4})
            time.sleep(0.1)  # let dispatch pick the blocker up
            tickets = [srv.submit({"op": "ping", "id": i}) for i in range(8)]
            replies = [ticket.wait(30) for ticket in tickets]
            shed = [r for r in replies if not r["ok"]]
            served = [r for r in replies if r["ok"]]
            assert shed, "queue_depth=2 must shed some of 8 concurrent pings"
            for reply in shed:
                assert reply["error"]["code"] == "overloaded"
                assert "queue_depth=2" in reply["error"]["message"]
            # Accepted tickets (at most queue_depth at any instant) all serve.
            assert len(served) >= 1
            assert blocker.wait(30)["ok"] is True
            assert srv.stats.shed == len(shed)
            assert srv.request({"op": "ping"})["ok"] is True

    def test_shed_reply_is_immediate(self, instance):
        service = ServicePolicy(queue_depth=1, max_inflight=1)
        with AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, service=service
        ) as srv:
            srv.submit({"op": "burn", "seconds": 0.4})
            time.sleep(0.1)
            srv.submit({"op": "ping"})  # fills the queue
            start = time.monotonic()
            reply = srv.submit({"op": "ping"}).wait(5)
            if reply["ok"]:  # dispatch drained the queue between submits
                pytest.skip("queue drained too fast to observe shedding")
            assert time.monotonic() - start < 0.1
            assert reply["error"]["code"] == "overloaded"


# --------------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------------- #
class TestCoalescing:
    def test_identical_queries_share_one_pass(self, instance):
        service = ServicePolicy(queue_depth=16, max_inflight=8)
        with AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, service=service
        ) as srv:
            srv.submit({"op": "burn", "seconds": 0.3})
            time.sleep(0.1)  # dispatch is busy; the next submits queue up
            tickets = [
                srv.submit({"op": "spread", "advertiser": 0, "seeds": [0], "id": i})
                for i in range(4)
            ]
            replies = [ticket.wait(30) for ticket in tickets]
            revenues = {r["result"]["revenue"] for r in replies}
            assert len(revenues) == 1  # identical answers
            assert {r["id"] for r in replies} == {0, 1, 2, 3}  # own envelopes
            assert srv.stats.coalesced >= 1

    def test_refresh_never_coalesced(self, instance, server):
        first = server.request({"op": "refresh", "deltas": []})
        second = server.request({"op": "refresh", "deltas": []})
        assert first["result"]["epoch"] + 1 == second["result"]["epoch"]


# --------------------------------------------------------------------------- #
# (d) drain: in-flight finishes, new requests rejected, state machine lands
# --------------------------------------------------------------------------- #
class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self, instance):
        with AllocationServer(instance, policy=INLINE, rr_sets=200, seed=11) as srv:
            inflight = srv.submit({"op": "burn", "seconds": 0.3})
            time.sleep(0.1)
            srv.initiate_drain()
            late = srv.submit({"op": "ping"})
            late_reply = late.wait(10)
            assert late_reply["ok"] is False
            assert late_reply["error"]["code"] == "draining"
            assert inflight.wait(10)["ok"] is True  # in-flight completed
            assert srv.wait_stopped(10)
            assert srv.state == "stopped"

    def test_shutdown_op_drains(self, instance):
        with AllocationServer(instance, policy=INLINE, rr_sets=200, seed=11) as srv:
            reply = srv.request({"op": "shutdown"})
            assert reply["ok"] is True and reply["result"] == {"draining": True}
            assert srv.wait_stopped(10)
            assert srv.state == "stopped"

    def test_drain_grace_bounds_queued_work(self, instance):
        service = ServicePolicy(queue_depth=16, max_inflight=1, drain_grace_s=0.3)
        with AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, service=service
        ) as srv:
            tickets = [
                srv.submit({"op": "burn", "seconds": 0.25, "id": i})
                for i in range(8)
            ]
            srv.initiate_drain()
            assert srv.wait_stopped(15)
            replies = [ticket.wait(5) for ticket in tickets]
            outcomes = {
                (r["ok"], r.get("error", {}).get("code")) for r in replies
            }
            # Early tickets completed inside the grace window, late ones were
            # released with a structured draining error — never left hanging.
            assert all(ticket.done.is_set() for ticket in tickets)
            assert (False, "draining") in outcomes

    def test_lifecycle_misuse_raises(self, instance):
        srv = AllocationServer(instance, policy=INLINE, rr_sets=100, seed=11)
        srv.start()
        with pytest.raises(ServiceError, match="already started"):
            srv.start()
        srv.close()
        assert srv.state == "stopped"
        with pytest.raises(ServiceError, match="already stopped"):
            srv.start()


# --------------------------------------------------------------------------- #
# (a) worker crashes: bit-identical replies, recovery in the envelope
# --------------------------------------------------------------------------- #
class TestCrashBitIdentity:
    def _run_session(self, instance, inject_crash: bool):
        """One serve session: refresh a batch, then allocate; returns the
        canonical reply lines (ids fixed, so byte-comparable)."""
        with AllocationServer(
            instance, policy=POOLED, rr_sets=300, seed=11
        ) as srv:
            refresh = {
                "op": "refresh",
                "id": "r1",
                "deltas": [edge_update(instance)],
            }
            if inject_crash:
                # Faults arm at pool spawn: release the startup pool so the
                # refresh below spawns a fresh, fault-armed one.
                srv.runtime.close()
                injector = FaultInjector()
                injector.kill_worker(None, when="before", times=1)
                with injector:
                    first = srv.request(refresh, timeout=120)
            else:
                first = srv.request(refresh, timeout=120)
            second = srv.request({"op": "allocate", "id": "a1"}, timeout=120)
            crashes = srv.runtime.recovery_stats.worker_crashes
        return first, second, crashes

    def test_allocation_reply_bit_identical_under_worker_crash(self, instance):
        clean_refresh, clean_alloc, clean_crashes = self._run_session(
            instance, inject_crash=False
        )
        crash_refresh, crash_alloc, crash_count = self._run_session(
            instance, inject_crash=True
        )
        assert clean_crashes == 0
        assert crash_count >= 1  # the fault really fired
        # The recovery envelope differs by design; everything the client
        # computes from — result, epoch, ok — must be byte-identical.
        for clean, crashed in ((clean_refresh, crash_refresh), (clean_alloc, crash_alloc)):
            clean = {k: v for k, v in clean.items() if k != "recovery"}
            crashed = {k: v for k, v in crashed.items() if k != "recovery"}
            assert encode_reply(clean) == encode_reply(crashed)
        # And the crash is visible where it should be: the envelope.
        assert crash_alloc["recovery"]["worker_crashes"] >= 1


# --------------------------------------------------------------------------- #
# concurrency smoke: parallel submitters, single dispatch, no lost tickets
# --------------------------------------------------------------------------- #
class TestConcurrentClients:
    def test_every_ticket_resolves_exactly_once(self, instance):
        service = ServicePolicy(queue_depth=32, max_inflight=4)
        with AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, service=service
        ) as srv:
            replies = []
            lock = threading.Lock()

            def client(worker_id):
                for i in range(5):
                    reply = srv.request(
                        {"op": "ping", "id": f"{worker_id}-{i}"}, timeout=60
                    )
                    with lock:
                        replies.append(reply)

            threads = [
                threading.Thread(target=client, args=(w,)) for w in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            ids = [reply["id"] for reply in replies]
            assert len(ids) == 20 and len(set(ids)) == 20
            assert all(
                reply["ok"] or reply["error"]["code"] == "overloaded"
                for reply in replies
            )
