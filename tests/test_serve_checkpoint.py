"""Durability suite: checksummed checkpoints, WAL journal, kill -9 recovery.

The acceptance contract (e): a server killed with ``SIGKILL`` between delta
batches restarts — from its checkpoint plus the write-ahead journal — with
an RR-store **bit-identical** to replaying the acknowledged deltas on a
fresh store.  The write-ahead ordering (journal fsync *before* apply,
reply after) is what makes "acknowledged" well-defined across the kill.

Also covered: atomic checkpoint writes (a reader never sees a torn file),
payload checksum verification, torn-journal-tail tolerance vs mid-journal
corruption, and epoch-gap detection.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import CheckpointError, SamplingError
from repro.graph.deltas import AddNode, MutableGraphView, UpdateProbability
from repro.rrsets.store import RRStore
from repro.runtime import ExecutionPolicy
from repro.serve import AllocationServer, CheckpointManager
from repro.serve.checkpoint import DeltaJournal

from test_serve import INLINE, build_instance, edge_update

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def instance():
    return build_instance()


def fresh_replay(instance, delta_batches, rr_sets=300, seed=11):
    """A store built from scratch and fed the same batches (the reference)."""
    view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
    store = RRStore(view, instance.cpes(), seed=seed, policy=INLINE)
    store.generate(rr_sets)
    for batch in delta_batches:
        store.apply_deltas(batch)
    return store


def assert_stores_bit_identical(left, right):
    """Slot arrays + entropy define the store; view epochs are relative
    counters (a restored view restarts at 0 under the checkpoint's base)."""
    for a, b in zip(left.export_slots(), right.export_slots()):
        assert np.array_equal(a, b)
    assert left.seed == right.seed
    assert left.view.num_nodes == right.view.num_nodes


# --------------------------------------------------------------------------- #
# checkpoint file format
# --------------------------------------------------------------------------- #
class TestCheckpointFormat:
    def test_roundtrip(self, instance, tmp_path):
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(200)
        manager = CheckpointManager(tmp_path)
        assert not manager.has_checkpoint()
        manager.save_state(view, store, epoch=0)
        assert manager.has_checkpoint()
        restored = manager.restore(policy=INLINE)
        assert restored.base_epoch == 0
        assert restored.replayed_batches == 0
        assert not restored.dropped_torn_tail
        assert_stores_bit_identical(store, restored.store)
        # The restored store is live: it can absorb further deltas.
        restored.store.apply_deltas([AddNode(count=1)])
        assert restored.view.epoch == 1

    def test_checkpoint_includes_isolated_nodes(self, instance, tmp_path):
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(100)
        store.apply_deltas([AddNode(count=3)])
        manager = CheckpointManager(tmp_path)
        manager.save_state(view, store, epoch=1)
        restored = manager.restore(policy=INLINE)
        assert restored.view.num_nodes == instance.num_nodes + 3
        assert_stores_bit_identical(store, restored.store)

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointManager(tmp_path).load()

    def test_corrupt_payload_detected(self, instance, tmp_path):
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(50)
        manager = CheckpointManager(tmp_path)
        path = manager.save_state(view, store, epoch=0)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            manager.load()

    def test_truncated_payload_detected(self, instance, tmp_path):
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(50)
        manager = CheckpointManager(tmp_path)
        path = manager.save_state(view, store, epoch=0)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            manager.load()

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "store.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            CheckpointManager(tmp_path).load()


# --------------------------------------------------------------------------- #
# delta journal
# --------------------------------------------------------------------------- #
class TestDeltaJournal:
    def test_append_and_replay(self, tmp_path):
        journal = DeltaJournal(tmp_path / "deltas.wal")
        journal.append(1, [UpdateProbability(0, 1, 0.5)])
        journal.append(2, [AddNode(count=2)])
        journal.close()
        entries, torn = journal.entries()
        assert not torn
        assert [epoch for epoch, _ in entries] == [1, 2]
        assert entries[0][1] == [UpdateProbability(0, 1, 0.5)]
        assert entries[1][1] == [AddNode(count=2)]

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        journal = DeltaJournal(tmp_path / "deltas.wal")
        journal.append(1, [UpdateProbability(0, 1, 0.5)])
        journal.close()
        with open(tmp_path / "deltas.wal", "ab") as handle:
            handle.write(b'deadbeef {"epoch": 2, "deltas": [{"kind": "add_')
        entries, torn = journal.entries()
        assert torn
        assert [epoch for epoch, _ in entries] == [1]

    def test_mid_journal_corruption_raises(self, tmp_path):
        journal = DeltaJournal(tmp_path / "deltas.wal")
        journal.append(1, [UpdateProbability(0, 1, 0.5)])
        journal.append(2, [AddNode(count=1)])
        journal.close()
        lines = (tmp_path / "deltas.wal").read_bytes().split(b"\n")
        lines[0] = b"00000000 " + lines[0].split(b" ", 1)[1]  # break line 1 CRC
        (tmp_path / "deltas.wal").write_bytes(b"\n".join(lines))
        with pytest.raises(CheckpointError, match="corrupt at line 1"):
            journal.entries()

    def test_reset_truncates(self, tmp_path):
        journal = DeltaJournal(tmp_path / "deltas.wal")
        journal.append(1, [AddNode()])
        journal.reset()
        entries, torn = journal.entries()
        assert entries == [] and not torn
        journal.append(2, [AddNode()])  # reusable after reset
        assert [e for e, _ in journal.entries()[0]] == [2]

    def test_epoch_gap_detected_on_restore(self, instance, tmp_path):
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(50)
        manager = CheckpointManager(tmp_path)
        manager.save_state(view, store, epoch=0)
        manager.journal.append(2, [AddNode()])  # epoch 1 is missing
        manager.journal.close()
        with pytest.raises(CheckpointError, match="skips from epoch"):
            manager.restore(policy=INLINE)


# --------------------------------------------------------------------------- #
# (e) crash recovery == fresh replay, bit for bit
# --------------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_abandoned_server_restarts_bit_identical(self, instance, tmp_path):
        """In-process kill -9 model: drop the server (no drain, no final
        checkpoint) after acknowledged batches; recovery must equal a fresh
        store replaying the same batches."""
        batches_json = [
            [edge_update(instance, edge_id=0, probability=0.05)],
            [edge_update(instance, edge_id=1, probability=0.4)],
            [{"kind": "add_node", "count": 2}],
        ]
        server = AllocationServer(
            instance, policy=INLINE, rr_sets=300, seed=11, checkpoint_dir=tmp_path
        )
        server.start()
        for batch in batches_json:
            reply = server.request({"op": "refresh", "deltas": batch})
            assert reply["ok"] is True
        allocation_before = server.request({"op": "allocate", "id": "a"})
        server.runtime.close()  # abandon without drain: simulated SIGKILL

        recovered = AllocationServer(
            instance, policy=INLINE, rr_sets=300, seed=11, checkpoint_dir=tmp_path
        )
        with recovered:
            assert recovered.restored
            assert recovered.replayed_batches == 3
            assert recovered.epoch == 3
            from repro.serve.protocol import delta_from_json

            reference = fresh_replay(
                instance,
                [[delta_from_json(d) for d in batch] for batch in batches_json],
            )
            assert_stores_bit_identical(recovered.store, reference)
            allocation_after = recovered.request({"op": "allocate", "id": "a"})
            assert allocation_before["result"] == allocation_after["result"]

    def test_checkpoint_rotation_keeps_equivalence(self, instance, tmp_path):
        """With checkpoint_every=1 every batch rotates the journal; recovery
        must still match the full fresh replay."""
        from repro.serve import ServicePolicy
        from repro.serve.protocol import delta_from_json

        batches_json = [
            [edge_update(instance, edge_id=2, probability=0.01)],
            [edge_update(instance, edge_id=3, probability=0.33)],
        ]
        service = ServicePolicy(checkpoint_every=1)
        server = AllocationServer(
            instance,
            policy=INLINE,
            rr_sets=300,
            seed=11,
            checkpoint_dir=tmp_path,
            service=service,
        )
        server.start()
        for batch in batches_json:
            assert server.request({"op": "refresh", "deltas": batch})["ok"]
        server.runtime.close()

        recovered = AllocationServer(
            instance, policy=INLINE, rr_sets=300, seed=11, checkpoint_dir=tmp_path
        )
        with recovered:
            assert recovered.restored
            # Journal was rotated after every batch: nothing left to replay.
            assert recovered.replayed_batches == 0
            assert recovered.epoch == 2
            reference = fresh_replay(
                instance,
                [[delta_from_json(d) for d in batch] for batch in batches_json],
            )
            assert_stores_bit_identical(recovered.store, reference)

    def test_explicit_checkpoint_op(self, instance, tmp_path):
        server = AllocationServer(
            instance, policy=INLINE, rr_sets=200, seed=11, checkpoint_dir=tmp_path
        )
        with server:
            assert server.request({"op": "refresh", "deltas": [edge_update(instance)]})["ok"]
            reply = server.request({"op": "checkpoint"})
            assert reply["ok"] is True
            assert reply["result"]["epoch"] == 1
            assert Path(reply["result"]["path"]).exists()

    def test_checkpoint_op_without_directory_is_bad_request(self, instance):
        with AllocationServer(instance, policy=INLINE, rr_sets=100, seed=11) as server:
            reply = server.request({"op": "checkpoint"})
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad-request"

    def test_pending_maintenance_is_not_exportable(self, instance):
        """Checkpointing never captures a half-maintained store: export
        refuses while maintenance is pending."""
        view = MutableGraphView(instance.graph, instance.all_edge_probabilities())
        store = RRStore(view, instance.cpes(), seed=11, policy=INLINE)
        store.generate(50)
        store._pending_maintenance = (view.epoch, None, np.array([0]), "test")
        with pytest.raises(SamplingError, match="interrupted mid-redraw"):
            store.export_slots()


# --------------------------------------------------------------------------- #
# (e) the real thing: SIGKILL a serve subprocess between batches
# --------------------------------------------------------------------------- #
class TestKillNine:
    def test_sigkill_between_batches_recovers_bit_identical(self, tmp_path):
        """Full acceptance (e): spawn ``repro serve`` with a checkpoint dir,
        stream delta batches over stdio, ``kill -9`` after the second ack,
        restart with recovery and compare against a fresh replay of exactly
        the acknowledged, journaled batches."""
        checkpoint_dir = tmp_path / "state"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--dataset",
            "lastfm_like",
            "--scale",
            "0.05",
            "--advertisers",
            "2",
            "--rr-sets",
            "200",
            "--seed",
            "11",
            "--jobs",
            "1",
            "--maintenance",
            "inline",
            "--checkpoint-dir",
            str(checkpoint_dir),
        ]
        proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # The server builds its instance from the dataset registry; the
            # deltas below only touch node 0 -> * probabilities, which every
            # graph in the family has.
            batches = [
                [{"kind": "add_node", "count": 1}],
                [{"kind": "add_node", "count": 2}],
            ]
            acked = []
            for index, batch in enumerate(batches):
                proc.stdin.write(
                    json.dumps({"op": "refresh", "id": index, "deltas": batch})
                    + "\n"
                )
                proc.stdin.flush()
                reply = json.loads(proc.stdout.readline())
                assert reply["ok"] is True, reply
                acked.append(batch)
            # SIGKILL with acknowledged batches in the journal: no drain, no
            # final checkpoint, exactly the crash recovery must cover.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=30)

        from repro.datasets.registry import build_dataset
        from repro.serve.protocol import delta_from_json

        data = build_dataset(
            "lastfm_like",
            num_advertisers=2,
            incentive="linear",
            alpha=0.1,
            scale=0.05,
            seed=11,
            singleton_rr_sets=128,
        )
        recovered = AllocationServer(
            data.instance,
            policy=INLINE,
            rr_sets=200,
            seed=11,
            checkpoint_dir=checkpoint_dir,
        )
        with recovered:
            assert recovered.restored
            assert recovered.epoch == len(acked)
            reference = fresh_replay(
                data.instance,
                [[delta_from_json(d) for d in batch] for batch in acked],
                rr_sets=200,
                seed=11,
            )
            assert_stores_bit_identical(recovered.store, reference)
            # And the recovered server still serves.
            assert recovered.request({"op": "allocate"})["ok"] is True
