"""End-to-end tests for ``repro serve``: stdio, sockets, SIGTERM drain.

These run the real CLI in a subprocess — the same processes the
acceptance criteria talk about.  Every wait carries a hard timeout so a
hung server fails the test instead of the suite.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import AllocationServer, SocketListener, request_over_socket

from test_serve import INLINE, build_instance

REPO_ROOT = Path(__file__).resolve().parent.parent

SERVE_ARGS = [
    sys.executable,
    "-m",
    "repro.cli",
    "serve",
    "--dataset",
    "lastfm_like",
    "--scale",
    "0.05",
    "--advertisers",
    "2",
    "--rr-sets",
    "150",
    "--seed",
    "11",
    "--jobs",
    "1",
    "--maintenance",
    "inline",
]


def spawn_serve(*extra_args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.Popen(
        SERVE_ARGS + list(extra_args),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


@pytest.fixture(scope="module")
def instance():
    return build_instance()


# --------------------------------------------------------------------------- #
# stdio transport
# --------------------------------------------------------------------------- #
class TestStdio:
    def test_request_reply_and_clean_shutdown(self):
        proc = spawn_serve()
        try:
            requests = [
                {"op": "ping", "id": 1},
                {"op": "allocate", "id": 2, "tau": 0.1},
                {"op": "shutdown", "id": 3},
            ]
            stdin_payload = "".join(json.dumps(r) + "\n" for r in requests)
            stdout, stderr = proc.communicate(stdin_payload, timeout=120)
        except subprocess.TimeoutExpired:  # pragma: no cover - hard timeout
            proc.kill()
            raise
        replies = [json.loads(line) for line in stdout.splitlines() if line]
        assert proc.returncode == 0, stderr
        assert [r["id"] for r in replies] == [1, 2, 3]
        assert all(r["ok"] for r in replies), replies
        assert replies[0]["result"]["pong"] is True
        assert replies[1]["result"]["allocation"]
        assert "serving:" in stderr
        assert "drained:" in stderr

    def test_eof_drains_and_exits_zero(self):
        proc = spawn_serve()
        try:
            stdout, stderr = proc.communicate(
                json.dumps({"op": "ping", "id": "only"}) + "\n", timeout=120
            )
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise
        assert proc.returncode == 0, stderr
        assert json.loads(stdout.splitlines()[0])["ok"] is True

    def test_malformed_line_gets_structured_error(self):
        proc = spawn_serve()
        try:
            stdout, stderr = proc.communicate("this is not json\n", timeout=120)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise
        assert proc.returncode == 0, stderr
        reply = json.loads(stdout.splitlines()[0])
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"


# --------------------------------------------------------------------------- #
# SIGTERM drain (acceptance d)
# --------------------------------------------------------------------------- #
class TestSigtermDrain:
    def test_sigterm_finishes_inflight_and_exits_zero(self):
        """SIGTERM mid-burn: the in-flight request completes, its reply is
        emitted, the process exits 0 — all inside a hard wall-clock bound."""
        proc = spawn_serve()
        start = time.monotonic()
        try:
            # Wait until the server announces readiness on stderr.
            for line in proc.stderr:
                if "serving:" in line:
                    break
            proc.stdin.write(
                json.dumps({"op": "burn", "id": "inflight", "seconds": 1.0}) + "\n"
            )
            proc.stdin.flush()
            time.sleep(0.3)  # let the burn start executing
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover - hard timeout
            proc.kill()
            raise
        elapsed = time.monotonic() - start
        assert proc.returncode == 0
        replies = [json.loads(line) for line in stdout.splitlines() if line]
        assert any(r["id"] == "inflight" and r["ok"] for r in replies), replies
        assert elapsed < 60.0

    def test_sigint_equivalent_to_sigterm(self):
        proc = spawn_serve()
        try:
            for line in proc.stderr:
                if "serving:" in line:
                    break
            proc.send_signal(signal.SIGINT)
            stdout, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise
        assert proc.returncode == 0


# --------------------------------------------------------------------------- #
# socket transports
# --------------------------------------------------------------------------- #
class TestSockets:
    def test_tcp_round_trip(self, instance):
        server = AllocationServer(instance, policy=INLINE, rr_sets=200, seed=11)
        server.start()
        listener = SocketListener(server, port=0)
        try:
            replies = request_over_socket(
                listener.address,
                [
                    json.dumps({"op": "ping", "id": 1}),
                    json.dumps({"op": "stats", "id": 2}),
                ],
            )
            assert len(replies) == 2
            assert all(json.loads(r)["ok"] for r in replies)
        finally:
            listener.close()
            server.close()

    def test_tcp_many_connections(self, instance):
        server = AllocationServer(instance, policy=INLINE, rr_sets=200, seed=11)
        server.start()
        listener = SocketListener(server, port=0)
        try:
            for index in range(5):
                (reply,) = request_over_socket(
                    listener.address, [json.dumps({"op": "ping", "id": index})]
                )
                assert json.loads(reply)["id"] == index
        finally:
            listener.close()
            server.close()

    def test_unix_socket_round_trip(self, instance, tmp_path):
        path = tmp_path / "serve.sock"
        server = AllocationServer(instance, policy=INLINE, rr_sets=200, seed=11)
        server.start()
        listener = SocketListener(server, unix_path=str(path))
        try:
            (reply,) = request_over_socket(
                str(path), [json.dumps({"op": "ping", "id": "ux"})]
            )
            assert json.loads(reply)["ok"] is True
        finally:
            listener.close()
            server.close()
        assert not path.exists()  # unlinked on close

    def test_port_and_unix_socket_are_mutually_exclusive(self):
        proc = spawn_serve("--port", "0", "--unix-socket", "/tmp/x.sock")
        try:
            _, stderr = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise
        assert proc.returncode != 0
        assert "mutually exclusive" in stderr
