"""Zero-copy shared-memory payload transport: bit-identity + lifecycle.

Two contracts, matrixed over fork and spawn:

1. **Transport never influences results** — RR generation, sharded MC
   spread and full greedy allocations are bit-identical under
   ``payload="shm"`` and ``payload="pickle"`` for the same
   ``(seed, n_jobs)``.
2. **No segment outlives its pool** — ``/dev/shm`` is clean after a plain
   close, after crash-driven respawns (SIGKILL-equivalent worker death via
   the fault injector), and after a SIGTERM drain of ``repro serve``
   running with ``--payload shm``; crash respawn reuses the *same* live
   segment instead of repacking.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.diffusion.models import WeightedCascadeModel
from repro.exceptions import ExecutionError
from repro.graph import storage
from repro.graph.generators import preferential_attachment_digraph
from repro.parallel import (
    FailurePolicy,
    FaultInjector,
    PersistentPool,
    ShardedExecutor,
)
from repro.parallel.executor import (
    AUTO_SHM_MIN_BYTES,
    PAYLOAD_MODES,
    validate_payload_mode,
)
from repro.parallel.mc import sharded_spread
from repro.parallel.rr import run_generation_shards
from repro.rrsets.generator import SubsimRRGenerator
from repro.runtime import ExecutionPolicy, Runtime

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Start methods to matrix over (fork is Linux-only).
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

DEGRADE = FailurePolicy(retry_backoff_s=0.01)


@pytest.fixture(scope="module")
def micro_graph():
    return preferential_attachment_digraph(60, out_degree=3, seed=2)


@pytest.fixture(scope="module")
def wc_probabilities(micro_graph):
    return np.asarray(
        WeightedCascadeModel(micro_graph).edge_probabilities(), dtype=np.float64
    )


def _rr_signature(shards):
    return tuple(
        (tuple(shard.members.tolist()), tuple(shard.sizes.tolist()))
        for shard in shards
    )


def _new_segments(baseline):
    return sorted(set(storage.active_segments()) - set(baseline))


@pytest.fixture()
def segment_baseline():
    """Pre-existing segments (should be none, but don't fail on neighbours)."""
    return storage.active_segments()


# --------------------------------------------------------------------------- #
# payload-mode validation & auto threshold
# --------------------------------------------------------------------------- #
class TestPayloadModeKnob:
    def test_modes(self):
        assert set(PAYLOAD_MODES) == {"auto", "pickle", "shm"}
        for mode in PAYLOAD_MODES:
            assert validate_payload_mode(mode) == mode
        with pytest.raises(ExecutionError):
            validate_payload_mode("carrier-pigeon")

    def test_pool_rejects_bad_mode(self):
        with pytest.raises(ExecutionError):
            PersistentPool(payload_mode="nope")

    def test_auto_small_payload_uses_pickle(self, segment_baseline):
        pool = PersistentPool(payload_mode="auto")
        try:
            assert pool.broadcast(np.arange(16), processes=2)
            assert _new_segments(segment_baseline) == []
        finally:
            pool.close()

    def test_auto_large_payload_uses_shm(self, segment_baseline):
        big = np.zeros(AUTO_SHM_MIN_BYTES // 8 + 16, dtype=np.float64)
        pool = PersistentPool(payload_mode="auto")
        try:
            assert pool.broadcast(big, processes=2)
            assert len(_new_segments(segment_baseline)) == 1
        finally:
            pool.close()
        assert _new_segments(segment_baseline) == []


# --------------------------------------------------------------------------- #
# bit-identity: shm vs pickle vs serial, fork and spawn
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("start_method", START_METHODS)
class TestBitIdentity:
    def _executor(self, start_method, payload_mode, pool_holder):
        pool = PersistentPool(start_method=start_method, payload_mode=payload_mode)
        pool_holder.append(pool)
        return ShardedExecutor(2, pool=pool)

    def test_rr_generation(self, start_method, micro_graph, wc_probabilities):
        serial = run_generation_shards(
            SubsimRRGenerator, micro_graph, wc_probabilities, 120, 7,
            ShardedExecutor(2),
        )
        pools = []
        try:
            signatures = {
                mode: _rr_signature(
                    run_generation_shards(
                        SubsimRRGenerator, micro_graph, wc_probabilities, 120, 7,
                        self._executor(start_method, mode, pools),
                    )
                )
                for mode in ("pickle", "shm")
            }
        finally:
            for pool in pools:
                pool.close()
        assert signatures["pickle"] == signatures["shm"] == _rr_signature(serial)

    def test_mc_spread(self, start_method, micro_graph, wc_probabilities):
        seeds = np.array([0, 3, 11], dtype=np.int64)
        pools = []
        try:
            spreads = {
                mode: sharded_spread(
                    micro_graph, wc_probabilities, seeds, 400, 5,
                    self._executor(start_method, mode, pools),
                )
                for mode in ("pickle", "shm")
            }
        finally:
            for pool in pools:
                pool.close()
        assert spreads["pickle"] == spreads["shm"]

    def test_greedy_allocations(self, start_method):
        from repro.datasets.registry import build_dataset

        dataset = build_dataset(
            "lastfm_like", num_advertisers=3, scale=0.15, seed=1,
            singleton_rr_sets=200,
        )
        results = {}
        for mode in ("pickle", "shm"):
            params = SamplingParameters(
                initial_rr_sets=128,
                max_rr_sets=256,
                seed=1,
                policy=ExecutionPolicy(rr_engine="subsim", n_jobs=2, payload=mode),
            )
            with Runtime(params.policy, start_method=start_method) as rt:
                results[mode] = rm_without_oracle(
                    dataset.instance, params, runtime=rt
                )
        pickle_run, shm_run = results["pickle"], results["shm"]
        assert pickle_run.revenue == shm_run.revenue
        assert all(
            pickle_run.allocation.seeds(i) == shm_run.allocation.seeds(i)
            for i in range(3)
        )
        assert pickle_run.metadata["rr_sets"] == shm_run.metadata["rr_sets"]


# --------------------------------------------------------------------------- #
# segment lifecycle: close, crash respawn, worker SIGKILL
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("start_method", START_METHODS)
class TestSegmentLifecycle:
    def test_close_unlinks_segments(
        self, start_method, micro_graph, wc_probabilities, segment_baseline
    ):
        pool = PersistentPool(start_method=start_method, payload_mode="shm")
        executor = ShardedExecutor(2, pool=pool)
        run_generation_shards(
            SubsimRRGenerator, micro_graph, wc_probabilities, 60, 7, executor
        )
        created = _new_segments(segment_baseline)
        assert len(created) == 1
        assert storage.segment_exists(created[0])
        pool.close()
        assert _new_segments(segment_baseline) == []
        assert not storage.segment_exists(created[0])

    def test_crash_respawn_reuses_live_segment(
        self, start_method, micro_graph, wc_probabilities, segment_baseline
    ):
        """A SIGKILL-equivalent worker death (os._exit) must not lose or leak
        the segment: the respawned pool re-broadcasts the same one."""
        expected = _rr_signature(
            run_generation_shards(
                SubsimRRGenerator, micro_graph, wc_probabilities, 60, 7,
                ShardedExecutor(2),
            )
        )
        pool = PersistentPool(start_method=start_method, payload_mode="shm")
        try:
            executor = ShardedExecutor(2, pool=pool, failure=DEGRADE)
            injector = FaultInjector(context=multiprocessing.get_context(start_method))
            injector.kill_worker(shard=0, when="before")
            with warnings.catch_warnings(), injector:
                warnings.simplefilter("ignore", RuntimeWarning)
                recovered = _rr_signature(
                    run_generation_shards(
                        SubsimRRGenerator, micro_graph, wc_probabilities, 60, 7,
                        executor,
                    )
                )
            assert recovered == expected
            assert pool.spawn_count == 2  # initial spawn + recovery respawn
            assert pool.recovery_stats.pool_respawns >= 1
            created = _new_segments(segment_baseline)
            assert len(created) == 1
            # The recovered pool keeps serving the same bits off the same
            # segment: the post-respawn re-broadcast reused it, no repack.
            clean = _rr_signature(
                run_generation_shards(
                    SubsimRRGenerator, micro_graph, wc_probabilities, 60, 7,
                    executor,
                )
            )
            assert clean == expected
            assert _new_segments(segment_baseline) == created
        finally:
            pool.close()
        assert _new_segments(segment_baseline) == []


# --------------------------------------------------------------------------- #
# SIGTERM drain of `repro serve --payload shm`
# --------------------------------------------------------------------------- #
class TestServeDrain:
    def test_sigterm_drain_leaves_no_segments(self, segment_baseline):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dataset", "lastfm_like", "--scale", "0.05",
                "--advertisers", "2", "--rr-sets", "150", "--seed", "11",
                "--jobs", "2", "--payload", "shm",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            for line in proc.stderr:
                if "serving:" in line:
                    break
            proc.stdin.write(json.dumps({"op": "allocate", "id": 1, "tau": 0.1}) + "\n")
            proc.stdin.flush()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:  # pragma: no cover - hard timeout
            proc.kill()
            raise
        assert proc.returncode == 0
        replies = [json.loads(line) for line in stdout.splitlines() if line]
        assert any(r["id"] == 1 and r["ok"] for r in replies), replies
        assert _new_segments(segment_baseline) == []
