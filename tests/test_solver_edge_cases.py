"""Edge cases and failure-injection tests for the solvers.

These cover degenerate instances the algorithms must survive gracefully:
budgets too small for any seed, disconnected graphs, zero-probability
propagation, single-node graphs, and advertisers with identical parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.advertising.advertiser import Advertiser
from repro.advertising.instance import RMInstance
from repro.advertising.oracle import ExactOracle, MonteCarloOracle, RRSetOracle
from repro.baselines.ca_greedy import ca_greedy
from repro.baselines.cs_greedy import cs_greedy
from repro.baselines.ti_common import TIParameters
from repro.baselines.ti_csrm import ti_csrm
from repro.core.greedy import greedy_single_advertiser
from repro.core.oracle_solver import rm_with_oracle
from repro.core.sampling_solver import SamplingParameters, rm_without_oracle
from repro.core.threshold_greedy import threshold_greedy
from repro.diffusion.models import IndependentCascadeModel
from repro.graph.builders import from_edge_list
from repro.rrsets.uniform import UniformRRSampler


def make_instance(edges, num_nodes, budgets, probability=0.5, costs=None, cpes=None):
    graph = from_edge_list(edges, num_nodes=num_nodes)
    model = IndependentCascadeModel(graph, probability=probability)
    cpes = cpes or [1.0] * len(budgets)
    advertisers = [Advertiser(budget=b, cpe=c) for b, c in zip(budgets, cpes)]
    if costs is None:
        costs = np.ones((len(budgets), num_nodes))
    return RMInstance(graph, model, advertisers, costs)


class TestDegenerateBudgets:
    def test_budget_too_small_for_any_seed_gives_empty_allocation(self):
        # Every node's cost + singleton revenue exceeds the budget of 1.5.
        instance = make_instance([(0, 1)], 3, budgets=[1.5, 1.5])
        oracle = ExactOracle(instance)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        assert result.allocation.is_empty()
        assert result.revenue == 0.0

    def test_single_advertiser_tiny_budget(self):
        instance = make_instance([(0, 1)], 3, budgets=[1.5])
        oracle = ExactOracle(instance)
        best, selected, stopple = greedy_single_advertiser(instance, oracle, 0)
        assert best == set()

    def test_rma_with_tiny_budgets_returns_empty_but_valid(self):
        instance = make_instance([(0, 1), (1, 2)], 4, budgets=[1.2, 1.2])
        result = rm_without_oracle(
            instance, SamplingParameters(initial_rr_sets=64, max_rr_sets=128, seed=1)
        )
        assert result.allocation.total_seed_count() <= 1
        assert result.revenue >= 0.0

    def test_baselines_with_tiny_budgets(self):
        instance = make_instance([(0, 1), (1, 2)], 4, budgets=[1.2, 1.2])
        oracle = ExactOracle(instance)
        assert ca_greedy(instance, oracle).allocation.is_empty()
        assert cs_greedy(instance, oracle).allocation.is_empty()


class TestDegenerateGraphs:
    def test_graph_with_no_edges(self):
        instance = make_instance([], 5, budgets=[10.0, 10.0])
        oracle = ExactOracle(instance)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        # Each selected node contributes exactly 1 engagement.
        for advertiser, seeds in result.allocation.items():
            revenue = oracle.revenue(advertiser, seeds)
            assert revenue == pytest.approx(float(len(seeds)))

    def test_zero_probability_edges(self):
        instance = make_instance([(0, 1), (1, 2)], 4, budgets=[8.0], probability=0.0)
        oracle = ExactOracle(instance)
        best, _, _ = greedy_single_advertiser(instance, oracle, 0)
        assert oracle.revenue(0, best) == pytest.approx(float(len(best)))

    def test_disconnected_components_both_used(self):
        # Two disjoint stars; with two advertisers both components carry seeds.
        edges = [(0, 1), (0, 2), (3, 4), (3, 5)]
        instance = make_instance(edges, 6, budgets=[6.0, 6.0], probability=1.0)
        oracle = ExactOracle(instance)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        assigned = result.allocation.assigned_nodes()
        assert assigned & {0, 1, 2}
        assert assigned & {3, 4, 5}

    def test_single_node_graph(self):
        instance = make_instance([], 1, budgets=[5.0])
        oracle = ExactOracle(instance)
        best, _, _ = greedy_single_advertiser(instance, oracle, 0)
        assert best == {0}


class TestManyAdvertisers:
    def test_more_advertisers_than_attractive_nodes(self):
        edges = [(0, 1), (0, 2), (0, 3)]
        budgets = [6.0] * 6
        instance = make_instance(edges, 4, budgets=budgets, probability=1.0)
        oracle = ExactOracle(instance)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        # Partition constraint: at most 4 nodes can be assigned in total.
        assert result.allocation.total_seed_count() <= 4

    def test_identical_advertisers_split_the_graph(self):
        edges = [(0, 1), (2, 3), (4, 5)]
        instance = make_instance(edges, 6, budgets=[4.0, 4.0, 4.0], probability=1.0)
        oracle = ExactOracle(instance)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        sizes = [len(seeds) for _, seeds in result.allocation.items()]
        assert sum(sizes) >= 3

    def test_threshold_greedy_with_ten_advertisers(self):
        edges = [(i, (i + 1) % 12) for i in range(12)]
        instance = make_instance(edges, 12, budgets=[5.0] * 10, probability=0.3)
        oracle = MonteCarloOracle(instance, num_simulations=100, seed=1)
        allocation, depleted = threshold_greedy(instance, oracle, gamma=0.0)
        assert 0 <= depleted <= 10
        assert allocation.total_seed_count() <= 12


class TestHeterogeneousCpe:
    def test_high_cpe_advertiser_wins_contested_nodes(self):
        """With equal budgets and spread, the uniform sampler's cpe weighting
        plus the greedy gain rule should route the hub to the high-cpe ad."""
        edges = [(0, 1), (0, 2), (0, 3), (0, 4)]
        graph = from_edge_list(edges, num_nodes=5)
        model = IndependentCascadeModel(graph, probability=1.0)
        advertisers = [Advertiser(budget=50.0, cpe=1.0), Advertiser(budget=50.0, cpe=3.0)]
        instance = RMInstance(graph, model, advertisers, np.ones((2, 5)))
        sampler = UniformRRSampler(
            graph, instance.all_edge_probabilities(), instance.cpes(), seed=4
        )
        oracle = RRSetOracle(sampler.generate_collection(2000), instance.gamma)
        result = rm_with_oracle(instance, oracle, tau=0.1)
        assert result.allocation.owner_of(0) == 1

    def test_ti_baseline_with_heterogeneous_cpe(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        instance = make_instance(
            edges, 5, budgets=[8.0, 12.0], probability=0.4, cpes=[1.0, 2.0]
        )
        result = ti_csrm(
            instance,
            TIParameters(epsilon=0.3, pilot_size=32, max_rr_sets_per_advertiser=128, seed=2),
        )
        assert result.revenue >= 0.0
