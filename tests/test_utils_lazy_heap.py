"""Tests for the lazy-greedy heap, including equivalence with an eager arg-max."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.lazy_heap import LazyMarginalHeap


class TestBasicOperations:
    def test_pop_returns_largest(self):
        values = {"a": 1.0, "b": 5.0, "c": 3.0}
        heap = LazyMarginalHeap(lambda key: values[key])
        heap.push_many(values)
        assert heap.pop_best()[0] == "b"

    def test_pop_order_is_descending_when_static(self):
        values = {"a": 1.0, "b": 5.0, "c": 3.0}
        heap = LazyMarginalHeap(lambda key: values[key])
        heap.push_many(values)
        order = [heap.pop_best()[0] for _ in range(3)]
        assert order == ["b", "c", "a"]

    def test_empty_heap_returns_none(self):
        heap = LazyMarginalHeap(lambda key: 0.0)
        assert heap.pop_best() is None

    def test_len_and_contains(self):
        heap = LazyMarginalHeap(lambda key: 1.0)
        heap.push("x")
        assert len(heap) == 1
        assert "x" in heap
        heap.pop_best()
        assert len(heap) == 0
        assert "x" not in heap

    def test_remove_skips_key(self):
        values = {"a": 1.0, "b": 5.0}
        heap = LazyMarginalHeap(lambda key: values[key])
        heap.push_many(values)
        heap.remove("b")
        assert heap.pop_best()[0] == "a"

    def test_peek_does_not_remove(self):
        heap = LazyMarginalHeap(lambda key: {"a": 2.0}[key])
        heap.push("a")
        assert heap.peek_best()[0] == "a"
        assert len(heap) == 1

    def test_push_with_explicit_value(self):
        heap = LazyMarginalHeap(lambda key: 0.0)
        heap.push("a", value=9.0)
        key, value = heap.pop_best()
        assert key == "a"
        assert value == 9.0


class TestLazyRefresh:
    def test_stale_values_are_refreshed_after_round_advance(self):
        values = {"a": 10.0, "b": 8.0}
        heap = LazyMarginalHeap(lambda key: values[key])
        heap.push_many(values)
        # Simulate submodular decay: "a" loses most of its value.
        values["a"] = 1.0
        heap.advance_round()
        assert heap.pop_best()[0] == "b"

    def test_refresh_keeps_all_keys(self):
        values = {"a": 10.0, "b": 8.0, "c": 6.0}
        heap = LazyMarginalHeap(lambda key: values[key])
        heap.push_many(values)
        values["a"] = 0.0
        heap.advance_round()
        popped = {heap.pop_best()[0] for _ in range(3)}
        assert popped == {"a", "b", "c"}


@settings(max_examples=60, deadline=None)
@given(
    initial=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    decays=st.lists(st.floats(min_value=0.1, max_value=1.0), min_size=1, max_size=12),
)
def test_lazy_selection_matches_eager_argmax(initial, decays):
    """Lazy selection must equal an eager arg-max when values only decrease.

    This mirrors how the greedy algorithms use the heap: after every
    selection, the remaining values may shrink (submodularity) and the heap is
    told via ``advance_round``.
    """
    values = dict(initial)
    heap = LazyMarginalHeap(lambda key: values[key])
    heap.push_many(values)

    eager_keys = set(values)
    selections_lazy = []
    selections_eager = []
    decay_iter = iter(decays * (len(values) // len(decays) + 1))

    for _ in range(len(initial)):
        popped = heap.pop_best()
        assert popped is not None
        selections_lazy.append(popped[0])

        best_eager = max(sorted(eager_keys), key=lambda key: (values[key]))
        selections_eager.append(best_eager)
        eager_keys.discard(best_eager)

        # Apply a uniform decay to every remaining value (keeps ordering
        # identical between the two strategies while still exercising
        # re-evaluation).
        factor = next(decay_iter)
        for key in eager_keys:
            values[key] *= factor
        heap.advance_round()

    lazy_values = sorted(initial[key] for key in selections_lazy)
    eager_values = sorted(initial[key] for key in selections_eager)
    assert np.allclose(lazy_values, eager_values)
