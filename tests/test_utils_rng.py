"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, random_subset, spawn_rngs


class TestAsRng:
    def test_returns_generator_for_int_seed(self):
        assert isinstance(as_rng(42), np.random.Generator)

    def test_returns_generator_for_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_passes_through_existing_generator(self):
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator

    def test_same_seed_same_stream(self):
        a = as_rng(7).random(5)
        b = as_rng(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(7).random(5)
        b = as_rng(8).random(5)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_spawns_requested_count(self):
        assert len(spawn_rngs(3, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(3, 2)
        assert not np.allclose(children[0].random(5), children[1].random(5))

    def test_reproducible_for_same_seed(self):
        first = [g.random(3) for g in spawn_rngs(5, 2)]
        second = [g.random(3) for g in spawn_rngs(5, 2)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_zero_children_allowed(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(2), 3)
        assert len(children) == 3

    def test_spawn_from_generator_depends_only_on_state(self):
        """Two generators in the same state spawn identical children."""
        first = [g.random(3) for g in spawn_rngs(np.random.default_rng(2), 2)]
        second = [g.random(3) for g in spawn_rngs(np.random.default_rng(2), 2)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_spawn_from_generator_advances_the_stream(self):
        """Repeated spawns from one generator yield fresh, distinct children."""
        generator = np.random.default_rng(2)
        first = [g.random(3) for g in spawn_rngs(generator, 2)]
        second = [g.random(3) for g in spawn_rngs(generator, 2)]
        for a, b in zip(first, second):
            assert not np.allclose(a, b)

    def test_spawn_from_pickled_generator_matches_original(self):
        """Regression: a pickle round-tripped generator spawns the same
        children as its source — the sharded engines rely on children being a
        pure function of generator state."""
        import pickle

        generator = np.random.default_rng(11)
        generator.random(5)  # advance past the freshly seeded state
        clone = pickle.loads(pickle.dumps(generator))
        original = [g.random(3) for g in spawn_rngs(generator, 2)]
        cloned = [g.random(3) for g in spawn_rngs(clone, 2)]
        for a, b in zip(original, cloned):
            assert np.allclose(a, b)

    def test_spawn_from_seed_sequence(self):
        """Regression: a SeedSequence input used to raise TypeError."""
        children = spawn_rngs(np.random.SeedSequence(5), 2)
        assert len(children) == 2
        assert not np.allclose(children[0].random(3), children[1].random(3))


class TestShardIndependence:
    """Pins the parallel determinism contract of the sharded engines."""

    def test_stable_across_calls(self):
        """``spawn_rngs(seed, k)`` yields bit-identical streams every call."""
        first = [g.integers(0, 1 << 62, size=4) for g in spawn_rngs(123, 8)]
        second = [g.integers(0, 1 << 62, size=4) for g in spawn_rngs(123, 8)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_no_duplicated_leading_draws(self):
        """No two of many substreams share their leading draws."""
        children = spawn_rngs(7, 64)
        leading = np.array([g.integers(0, 1 << 62) for g in children])
        assert np.unique(leading).size == leading.size
        blocks = np.stack([g.random(8) for g in spawn_rngs(7, 64)])
        assert np.unique(blocks, axis=0).shape[0] == blocks.shape[0]

    def test_prefix_stability(self):
        """The first k of spawn_rngs(seed, m) match spawn_rngs(seed, k)."""
        small = [g.random(4) for g in spawn_rngs(9, 2)]
        large = [g.random(4) for g in spawn_rngs(9, 6)][:2]
        for a, b in zip(small, large):
            assert np.allclose(a, b)


class TestRandomSubset:
    def test_probability_one_keeps_all(self):
        assert random_subset(range(10), 1.0, as_rng(0)) == list(range(10))

    def test_probability_zero_keeps_none(self):
        assert random_subset(range(10), 0.0, as_rng(0)) == []

    def test_intermediate_probability_keeps_subset(self):
        kept = random_subset(range(1000), 0.5, as_rng(0))
        assert 300 < len(kept) < 700
