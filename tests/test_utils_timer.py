"""Tests for repro.utils.timer."""

import time

from repro.utils.timer import Timer, timed


class TestTimer:
    def test_section_accumulates(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.005)
        assert timer.sections["work"] > 0

    def test_multiple_sections(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("b"):
            pass
        assert set(timer.sections) == {"a", "b"}

    def test_same_section_sums(self):
        timer = Timer()
        with timer.section("a"):
            time.sleep(0.002)
        first = timer.sections["a"]
        with timer.section("a"):
            time.sleep(0.002)
        assert timer.sections["a"] > first

    def test_total_is_sum(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("b"):
            pass
        assert abs(timer.total() - sum(timer.sections.values())) < 1e-12

    def test_reset_clears(self):
        timer = Timer()
        with timer.section("a"):
            pass
        timer.reset()
        assert timer.sections == {}

    def test_section_records_on_exception(self):
        timer = Timer()
        try:
            with timer.section("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "fails" in timer.sections


class TestTimed:
    def test_records_elapsed_seconds(self):
        with timed() as record:
            time.sleep(0.003)
        assert record["seconds"] >= 0.002
