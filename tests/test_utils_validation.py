"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_in_open_interval,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", math.inf)

    def test_rejects_non_number(self):
        with pytest.raises(ValueError):
            check_positive("x", "hello")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 3) == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInOpenInterval:
    def test_accepts_interior_point(self):
        assert check_in_open_interval("tau", 0.5, 0, 1) == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 2.0])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError):
            check_in_open_interval("tau", value, 0, 1)
